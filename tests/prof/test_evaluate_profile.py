"""Profile plumbing through evaluate_model, the scheduler, the cache and
the exports: SampleRecord format v3 end to end."""

import csv
import io
import json

import pytest

from repro.analysis.export import profile_csv, profile_rows, to_csv
from repro.bench import PCGBench
from repro.harness import ConfigurationError, EvalCache, evaluate_model
from repro.harness.evaluate import EvalRun
from repro.models import load_model
from repro.prof import CATEGORIES, Profile, profile_of

SAMPLES = 2
SEED = 7


@pytest.fixture(scope="module")
def bench():
    return PCGBench(problem_types=["stencil"], models=["openmp", "kokkos"])


@pytest.fixture(scope="module")
def llm():
    return load_model("GPT-3.5")


@pytest.fixture(scope="module")
def profiled(llm, bench):
    return evaluate_model(llm, bench, num_samples=SAMPLES, temperature=0.2,
                          with_timing=True, seed=SEED, profile=True)


@pytest.fixture(scope="module")
def unprofiled(llm, bench):
    return evaluate_model(llm, bench, num_samples=SAMPLES, temperature=0.2,
                          with_timing=True, seed=SEED)


def _strip_profiles(payload: str) -> dict:
    doc = json.loads(payload)
    for rec in doc.get("prompts", {}).values():
        for sample in rec.get("samples", ()):
            sample.pop("profile", None)
    return doc


class TestEvaluateModel:
    def test_requires_timing(self, llm, bench):
        with pytest.raises(ConfigurationError):
            evaluate_model(llm, bench, num_samples=1, profile=True)

    def test_correct_samples_carry_profiles(self, profiled):
        correct = [s for r in profiled.prompts.values() for s in r.samples
                   if s.status == "correct"]
        assert correct
        for s in correct:
            prof = profile_of(s)
            assert prof is not None
            assert set(prof.categories) == set(s.times)
            for n in s.times:
                assert prof.total(n) == pytest.approx(s.times[n],
                                                      rel=1e-9)

    def test_failed_samples_have_no_profile(self, profiled):
        for r in profiled.prompts.values():
            for s in r.samples:
                if s.status != "correct":
                    assert s.profile is None

    def test_profiling_off_is_byte_identical_semantics(self, profiled,
                                                       unprofiled):
        """Mirror of the faults idle-injector transparency check: the
        profiled run minus its profile fields IS the unprofiled run."""
        assert _strip_profiles(profiled.to_json()) == \
            _strip_profiles(unprofiled.to_json())
        assert all(s.profile is None for r in unprofiled.prompts.values()
                   for s in r.samples)

    def test_json_round_trip_preserves_profiles(self, profiled):
        back = EvalRun.from_json(profiled.to_json())
        assert back.to_json() == profiled.to_json()
        sample = next(s for r in back.prompts.values() for s in r.samples
                      if s.status == "correct")
        assert Profile.from_dict(sample.profile).categories


class TestScheduledDeterminism:
    def test_jobs_match_serial_with_profiles(self, llm, bench, profiled):
        parallel = evaluate_model(llm, bench, num_samples=SAMPLES,
                                  temperature=0.2, with_timing=True,
                                  seed=SEED, profile=True, jobs=2)
        assert parallel.to_json() == profiled.to_json()


class TestCache:
    def test_profiled_and_plain_do_not_alias(self, llm, bench, tmp_path):
        cache = EvalCache(cache_dir=str(tmp_path))
        kw = dict(num_samples=SAMPLES, temperature=0.2, with_timing=True,
                  seed=SEED)
        plain = cache.get_or_run(llm, bench, **kw)
        prof = cache.get_or_run(llm, bench, profile=True, **kw)
        assert _strip_profiles(prof.to_json()) == \
            _strip_profiles(plain.to_json())
        assert any(s.profile for r in prof.prompts.values()
                   for s in r.samples)
        assert not any(s.profile for r in plain.prompts.values()
                       for s in r.samples)
        # second profiled call is a cache hit with profiles intact
        again = cache.get_or_run(llm, bench, profile=True, **kw)
        assert again.to_json() == prof.to_json()


class TestExports:
    def test_csv_gains_profile_columns_only_when_profiled(self, profiled,
                                                          unprofiled):
        header = to_csv(profiled).splitlines()[0].split(",")
        assert "bottleneck" in header
        assert "atomic_ops" in header and "atomic_targets" in header
        for c in CATEGORIES:
            assert f"p_{c}" in header
        legacy = to_csv(unprofiled).splitlines()[0].split(",")
        assert "bottleneck" not in legacy
        assert not any(c.startswith("p_") for c in legacy)

    def test_csv_share_cells_sum_to_one(self, profiled):
        rows = list(csv.reader(io.StringIO(to_csv(profiled))))
        header = rows[0]
        cells = [dict(zip(header, r)) for r in rows[1:]]
        seen = 0
        for cell in cells:
            if cell["status"] != "correct" or not cell["bottleneck"]:
                continue
            seen += 1
            total = sum(float(cell[f"p_{c}"]) for c in CATEGORIES
                        if cell[f"p_{c}"] != "")
            assert total == pytest.approx(1.0, rel=1e-9)
        assert seen

    def test_profile_rows_and_csv(self, profiled):
        rows = profile_rows(profiled)
        assert rows
        for row in rows:
            assert row["exec_model"] in ("openmp", "kokkos")
            shares = sum(float(row[c]) for c in CATEGORIES)
            assert shares == pytest.approx(1.0, rel=1e-9)
            assert row["lost"] == pytest.approx(
                shares - float(row["compute"]), abs=1e-12)
        text = profile_csv(profiled)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0][:2] == ["exec_model", "n"]
        assert len(parsed) == 1 + len(rows)

    def test_unprofiled_run_yields_no_profile_rows(self, unprofiled):
        assert profile_rows(unprofiled) == []
