"""Unit tests for the profile records and the conservation-by-construction
accounting of :class:`ProfBuilder` (see ``docs/profiling.md``)."""

import json

import pytest

from repro.prof import (
    CATEGORIES,
    LOST_CATEGORIES,
    Profile,
    ProfBuilder,
    RunProfile,
    merge_counters,
)


class _Cpu:
    cycle = 2.0


class _Machine:
    cpu = _Cpu()


class _Ctx:
    """Minimal stand-in for ExecCtx: the three clocks + machine."""

    def __init__(self, cost=100.0, extra=0.0, adjust=None, scale=1.0):
        self.cost = cost
        self.extra_units = extra
        self.parallel_adjust = dict(adjust or {})
        self.work_scale = scale
        self.machine = _Machine()

    def sim_seconds(self, n):
        return (self.cost * self.work_scale + self.extra_units
                + self.parallel_adjust.get(n, 0.0)) * self.machine.cpu.cycle


class TestTaxonomy:
    def test_compute_is_never_lost(self):
        assert "compute" in CATEGORIES
        assert "compute" not in LOST_CATEGORIES
        assert set(LOST_CATEGORIES) == set(CATEGORIES) - {"compute"}


class TestProfBuilder:
    def test_pure_compute(self):
        ctx = _Ctx(cost=50.0)
        cats = ProfBuilder().categories_for(ctx, 1)
        assert cats == {"compute": 50.0 * _Cpu.cycle}

    def test_move_reclassifies_out_of_compute(self):
        ctx = _Ctx(cost=100.0)
        b = ProfBuilder()
        b.move("critical", 30.0)
        cats = b.categories_for(ctx, 1)
        assert cats["critical"] == pytest.approx(30.0 * _Cpu.cycle)
        assert cats["compute"] == pytest.approx(70.0 * _Cpu.cycle)
        assert sum(cats.values()) == pytest.approx(ctx.sim_seconds(1))

    def test_unattributed_extra_is_idle(self):
        ctx = _Ctx(cost=10.0, extra=8.0)
        b = ProfBuilder()
        b.add_extra("message", 5.0)
        cats = b.categories_for(ctx, 1)
        assert cats["message"] == pytest.approx(5.0 * _Cpu.cycle)
        assert cats["idle"] == pytest.approx(3.0 * _Cpu.cycle)
        assert sum(cats.values()) == pytest.approx(ctx.sim_seconds(1))

    def test_adjust_residue_lands_in_compute(self):
        # a region that halves the work at n=2 (-50) and charges 7 units
        # of named overhead: compute absorbs the negative ideal delta
        ctx = _Ctx(cost=100.0, adjust={2: -50.0 + 7.0})
        b = ProfBuilder()
        b.add_adjust(2, "fork_join", 4.0)
        b.add_adjust(2, "imbalance", 3.0)
        cats = b.categories_for(ctx, 2)
        assert cats["fork_join"] == pytest.approx(4.0 * _Cpu.cycle)
        assert cats["imbalance"] == pytest.approx(3.0 * _Cpu.cycle)
        assert cats["compute"] == pytest.approx(50.0 * _Cpu.cycle)
        assert sum(cats.values()) == pytest.approx(ctx.sim_seconds(2))

    def test_work_scale_applies_to_cost_clock_only(self):
        ctx = _Ctx(cost=100.0, extra=10.0, scale=3.0)
        b = ProfBuilder()
        b.move("atomic", 20.0)
        b.add_extra("collective", 10.0)
        cats = b.categories_for(ctx, 1)
        assert cats["atomic"] == pytest.approx(20.0 * 3.0 * _Cpu.cycle)
        assert cats["collective"] == pytest.approx(10.0 * _Cpu.cycle)
        assert sum(cats.values()) == pytest.approx(ctx.sim_seconds(1))

    def test_zero_valued_categories_dropped_except_compute(self):
        ctx = _Ctx(cost=0.0)
        b = ProfBuilder()
        b.move("critical", 0.0)       # no-op: zero units
        cats = b.categories_for(ctx, 1)
        assert cats == {"compute": 0.0}

    def test_conservation_is_exact_not_approximate(self):
        # awkward floats: the residue definition makes the sum *exact*
        ctx = _Ctx(cost=0.1 + 0.2, extra=1e-17, adjust={4: -0.07})
        b = ProfBuilder()
        b.move("critical", 0.1)
        b.add_adjust(4, "barrier", 0.013)
        total = sum(b.categories_for(ctx, 4).values())
        assert total == ctx.sim_seconds(4)

    def test_snapshot_copies_counters(self):
        ctx = _Ctx(cost=1.0)
        b = ProfBuilder()
        b.count("messages")
        b.count("messages")
        b.count("message_bytes", 64.0)
        snap = b.snapshot(ctx, 1)
        assert isinstance(snap, RunProfile)
        assert snap.counters == {"messages": 2.0, "message_bytes": 64.0}
        b.count("messages")
        assert snap.counters["messages"] == 2.0  # detached copy
        assert snap.total() == pytest.approx(ctx.sim_seconds(1))


class TestProfile:
    def _profile(self):
        return Profile(model="openmp",
                       categories={1: {"compute": 4.0},
                                   32: {"compute": 0.3, "fork_join": 0.1}},
                       counters={"parallel_regions": 2.0})

    def test_ns_total_share(self):
        p = self._profile()
        assert p.ns() == [1, 32]
        assert p.total(32) == pytest.approx(0.4)
        assert p.share(32, "fork_join") == pytest.approx(0.25)
        assert p.share(1, "fork_join") == 0.0

    def test_json_round_trip_restores_int_keys(self):
        p = self._profile()
        wire = json.loads(json.dumps(p.to_dict()))
        back = Profile.from_dict(wire)
        assert back == p
        assert all(isinstance(n, int) for n in back.categories)

    def test_from_dict_tolerates_missing_fields(self):
        assert Profile.from_dict({}) == Profile(model="")


class TestMergeCounters:
    def test_accumulates_in_place(self):
        into = {"messages": 1.0}
        out = merge_counters(into, {"messages": 2.0, "collectives": 3.0})
        assert out is into
        assert into == {"messages": 3.0, "collectives": 3.0}
