"""Shared guard: no test may leak a process-global injector."""

import pytest

from repro.faults import inject


@pytest.fixture(autouse=True)
def _no_injector_leak():
    assert inject.installed() is None, "injector leaked into this test"
    yield
    assert inject.installed() is None, "test leaked an installed injector"
