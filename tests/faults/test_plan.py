"""Tests for the fault-plan layer: registry, rule validation, seeded
generation, and JSON persistence."""

import pytest

from repro.faults import INJECTION_POINTS, LAYERS, FaultPlan, FaultRule


class TestRegistry:
    def test_every_point_has_layer_actions_description(self):
        for name, (layer, actions, desc) in INJECTION_POINTS.items():
            assert layer in ("runtime", "harness", "sched", "serve",
                             "guard"), name
            assert actions, name
            assert desc, name

    def test_layers_partition_the_registry(self):
        listed = [p for points in LAYERS.values() for p in points]
        assert sorted(listed) == sorted(INJECTION_POINTS)

    def test_all_layers_are_instrumented(self):
        assert set(LAYERS) == {"runtime", "harness", "sched", "serve",
                               "guard"}


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultRule(point="runtime.quantum.flip", action="drop")

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError, match="invalid action"):
            FaultRule(point="runtime.mpi.msg", action="kill")

    def test_occurrences_coerced_to_int_tuple(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=[1.0, 3])
        assert rule.occurrences == (1, 3)

    def test_occurrences_none_means_every(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=None)
        assert rule.occurrences is None

    def test_dict_round_trip(self):
        rule = FaultRule(point="sched.worker.kill", action="kill",
                         match="#a0", occurrences=(0, 2), param=1.5)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(rules=(
            FaultRule(point="runtime.mpi.msg", action="drop"),
            FaultRule(point="sched.journal.torn_write", action="torn",
                      occurrences=None, param=0.25),
        ), seed=9)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_seed_is_deterministic(self):
        assert FaultPlan.from_seed(5) == FaultPlan.from_seed(5)
        assert FaultPlan.from_seed(5).to_json() == \
            FaultPlan.from_seed(5).to_json()

    def test_from_seed_draws_per_layer(self):
        plan = FaultPlan.from_seed(3, layers=("runtime", "sched"),
                                   rules_per_layer=4)
        assert len(plan.rules) == 8
        layers = {INJECTION_POINTS[r.point][0] for r in plan.rules}
        assert layers <= {"runtime", "sched"}

    def test_from_seed_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown fault layer"):
            FaultPlan.from_seed(1, layers=("kernelspace",))

    def test_restricted_filters_by_layer(self):
        plan = FaultPlan.from_seed(7)
        sched_only = plan.restricted(("sched",))
        assert sched_only.rules
        assert all(INJECTION_POINTS[r.point][0] == "sched"
                   for r in sched_only.rules)
        assert plan.restricted(()).rules == ()

    def test_by_point_groups_rules_in_order(self):
        a = FaultRule(point="harness.flake", action="raise")
        b = FaultRule(point="harness.flake", action="raise",
                      occurrences=(1,))
        c = FaultRule(point="runtime.gpu.abort", action="abort")
        plan = FaultPlan(rules=(a, c, b))
        grouped = plan.by_point()
        assert grouped["harness.flake"] == (a, b)
        assert grouped["runtime.gpu.abort"] == (c,)
