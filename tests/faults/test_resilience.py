"""The runner's resilience layer: transient retry with backoff, the
system_error lane, and graceful degradation of fault-perturbed timing."""

import pytest

from repro.bench import all_problems, render_prompt
from repro.faults import FaultPlan, FaultRule, injector
from repro.harness import Runner

OK_SERIAL = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

OK_OMP = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

WRONG = """
kernel sum_of_elements(x: array<float>) -> float {
    return 0.0;
}
"""

# allocates a scratch array, so a tiny memory budget actually trips
OK_ALLOC = """
kernel sum_of_elements(x: array<float>) -> float {
    let scratch = alloc_float(len(x));
    let total = 0.0;
    for (i in 0..len(x)) {
        scratch[i] = x[i];
        total += scratch[i];
    }
    return total;
}
"""


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


def _prompt(model="serial"):
    problem = next(p for p in all_problems()
                   if p.name == "sum_of_elements")
    return render_prompt(problem, model)


@pytest.fixture()
def runner():
    return Runner(correctness_trials=2, retry_backoff=0.0)


class TestTransientRetry:
    def test_single_flake_is_retried_to_correct(self, runner):
        rule = FaultRule(point="harness.flake", action="raise")
        with injector(_plan(rule)) as inj:
            result = runner.evaluate_sample(OK_SERIAL, _prompt())
        assert result.status == "correct"
        assert len(inj.fired_events()) == 1

    def test_persistent_fault_exhausts_retry_budget(self, runner):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=None)
        with injector(_plan(rule)):
            result = runner.evaluate_sample(OK_SERIAL, _prompt())
        assert result.status == "system_error"
        assert "retry budget" in result.detail

    def test_zero_retries_fails_on_first_flake(self):
        runner = Runner(correctness_trials=2, transient_retries=0)
        rule = FaultRule(point="harness.flake", action="raise")
        with injector(_plan(rule)):
            result = runner.evaluate_sample(OK_SERIAL, _prompt())
        assert result.status == "system_error"

    def test_clean_failures_are_not_retried(self, runner):
        """A wrong answer with no fault fired is the model's fault and is
        returned immediately, not resampled."""
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=(7,))       # never reached
        with injector(_plan(rule)) as inj:
            result = runner.evaluate_sample(WRONG, _prompt())
        assert result.status == "wrong_answer"
        assert inj.fired_events() == []

    def test_fault_perturbed_failure_is_retried(self, runner):
        """An OOM injected mid-evaluation classifies as runtime_error,
        but the fired fault marks the attempt tainted -> retry wins."""
        rule = FaultRule(point="runtime.mem.budget", action="oom",
                         param=16.0)
        with injector(_plan(rule)) as inj:
            result = runner.evaluate_sample(OK_ALLOC, _prompt())
        assert result.status == "correct"
        assert len(inj.fired_events()) == 1

    def test_persistent_oom_is_a_system_error(self, runner):
        rule = FaultRule(point="runtime.mem.budget", action="oom",
                         occurrences=None, param=16.0)
        with injector(_plan(rule)):
            result = runner.evaluate_sample(OK_ALLOC, _prompt())
        assert result.status == "system_error"


class TestGracefulDegradation:
    def test_timing_fault_degrades_to_correctness_only(self, runner):
        rule = FaultRule(point="harness.timing", action="fault")
        with injector(_plan(rule)):
            result = runner.evaluate_sample(OK_SERIAL, _prompt(),
                                            with_timing=True)
        assert result.status == "degraded"
        assert result.times == {}
        assert "timing sweep" in result.detail

    def test_runtime_fault_during_sweep_degrades(self, runner):
        """An OpenMP straggler fired during the measurement sweep taints
        the times; the record degrades rather than reporting them."""
        rule = FaultRule(point="runtime.omp.stall", action="stall",
                         occurrences=(2,), param=0.5)
        with injector(_plan(rule)) as inj:
            result = runner.evaluate_sample(OK_OMP, _prompt("openmp"),
                                            with_timing=True)
        assert result.status == "degraded"
        assert result.times == {}
        assert inj.fired_events()

    def test_correctness_only_run_is_not_degraded(self, runner):
        rule = FaultRule(point="harness.timing", action="fault")
        with injector(_plan(rule)):
            result = runner.evaluate_sample(OK_SERIAL, _prompt())
        assert result.status == "correct"


class TestFastPath:
    def test_no_injector_timing_run_unchanged(self, runner):
        bare = runner.evaluate_sample(OK_SERIAL, _prompt(),
                                      with_timing=True)
        with injector(_plan()):
            shadowed = runner.evaluate_sample(OK_SERIAL, _prompt(),
                                              with_timing=True)
        assert bare.status == shadowed.status == "correct"
        assert bare.times == shadowed.times

    def test_retry_params_do_not_change_fingerprint(self):
        from repro.sched.plan import runner_fingerprint

        a = Runner(transient_retries=0)
        b = Runner(transient_retries=5, retry_backoff=0.5)
        assert runner_fingerprint(a) == runner_fingerprint(b)
