"""Tests for the injector runtime: deterministic occurrence counting,
scoping, match filters, the event log, and install/uninstall hygiene."""

import threading

import pytest

from repro.faults import (
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultRule,
    inject,
    injector,
    install,
    uninstall,
)


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


class TestFire:
    def test_point_without_rules_is_free(self):
        inj = FaultInjector(_plan(
            FaultRule(point="harness.flake", action="raise")))
        assert inj.fire("runtime.gpu.abort", "k") is None
        # no counter advanced, no event recorded: the fast path is silent
        assert inj.events == []

    def test_occurrence_indices_select_the_nth_fire(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=(1,))
        inj = FaultInjector(_plan(rule))
        assert inj.fire("harness.flake", "k") is None          # n=0: skip
        assert inj.fire("harness.flake", "k") is rule          # n=1: fire
        assert inj.fire("harness.flake", "k") is None          # n=2: skip
        assert [e.fired for e in inj.events] == [False, True, False]
        assert [e.index for e in inj.events] == [0, 1, 2]

    def test_occurrences_none_fires_every_time(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=None)
        inj = FaultInjector(_plan(rule))
        assert all(inj.fire("harness.flake") is rule for _ in range(4))

    def test_counters_are_per_key(self):
        rule = FaultRule(point="runtime.mpi.msg", action="drop")
        inj = FaultInjector(_plan(rule))
        assert inj.fire("runtime.mpi.msg", "0->1#t0") is rule   # n=0 fires
        assert inj.fire("runtime.mpi.msg", "1->0#t0") is rule   # fresh key
        assert inj.fire("runtime.mpi.msg", "0->1#t0") is None   # n=1

    def test_match_is_substring_of_qualified_key(self):
        rule = FaultRule(point="sched.worker.kill", action="kill",
                         match="#a0", occurrences=None)
        inj = FaultInjector(_plan(rule))
        assert inj.fire("sched.worker.kill", "t1#a0") is rule
        assert inj.fire("sched.worker.kill", "t1#a1") is None

    def test_first_matching_rule_wins(self):
        first = FaultRule(point="runtime.mpi.msg", action="drop",
                          occurrences=None)
        second = FaultRule(point="runtime.mpi.msg", action="dup",
                           occurrences=None)
        inj = FaultInjector(_plan(first, second))
        assert inj.fire("runtime.mpi.msg", "k") is first


class TestScopes:
    def test_scope_qualifies_keys_for_match(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         match="prompt-a", occurrences=None)
        inj = FaultInjector(_plan(rule))
        with inj.scope("prompt-a/12ab"):
            assert inj.fire("harness.flake", "attempt") is rule
        with inj.scope("prompt-b/34cd"):
            assert inj.fire("harness.flake", "attempt") is None

    def test_scope_counters_persist_across_reentry(self):
        """A retried sample re-enters its scope and continues the count —
        that is what lets a single-occurrence fault pass on retry."""
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=(0,))
        inj = FaultInjector(_plan(rule))
        with inj.scope("s"):
            assert inj.fire("harness.flake", "attempt") is rule
        with inj.scope("s"):                        # the retry
            assert inj.fire("harness.flake", "attempt") is None

    def test_scopes_are_independent(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=(0,))
        inj = FaultInjector(_plan(rule))
        with inj.scope("one"):
            assert inj.fire("harness.flake") is rule
        with inj.scope("two"):
            assert inj.fire("harness.flake") is rule

    def test_scope_fired_tracks_current_scope(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=None)
        inj = FaultInjector(_plan(rule))
        with inj.scope("s"):
            before = inj.scope_fired()
            inj.fire("harness.flake")
            inj.fire("harness.flake")
            assert inj.scope_fired() - before == 2
        with inj.scope("fresh"):
            assert inj.scope_fired() == 0

    def test_scope_is_thread_local(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=None)
        inj = FaultInjector(_plan(rule))
        seen = {}

        def other():
            # this thread never entered a scope: it counts at the root
            inj.fire("harness.flake")
            seen["fired"] = inj.scope_fired()

        with inj.scope("main-scope"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
            assert inj.scope_fired() == 0
        assert seen["fired"] == 1


class TestEventLog:
    def test_canonical_log_is_interleaving_invariant(self):
        rule = FaultRule(point="runtime.mpi.msg", action="drop",
                         occurrences=(1,))
        a = FaultInjector(_plan(rule))
        b = FaultInjector(_plan(rule))
        for key in ("x", "x", "y"):
            a.fire("runtime.mpi.msg", key)
        for key in ("y", "x", "x"):                 # different arrival order
            b.fire("runtime.mpi.msg", key)
        assert a.canonical_log() == b.canonical_log()

    def test_fired_events_filters(self):
        rule = FaultRule(point="harness.flake", action="raise",
                         occurrences=(1,))
        inj = FaultInjector(_plan(rule))
        inj.fire("harness.flake")
        inj.fire("harness.flake")
        assert len(inj.events) == 2
        fired = inj.fired_events()
        assert len(fired) == 1 and fired[0].index == 1

    def test_event_line_format(self):
        rule = FaultRule(point="harness.flake", action="raise")
        inj = FaultInjector(_plan(rule))
        inj.fire("harness.flake", "attempt")
        line = inj.events[0].line()
        assert "FIRE" in line and "harness.flake" in line


class TestInstall:
    def test_injector_context_manager(self):
        assert inject.installed() is None
        with injector(_plan()) as inj:
            assert inject.installed() is inj
            assert inject.ACTIVE is inj
        assert inject.installed() is None

    def test_nested_install_rejected(self):
        with injector(_plan()):
            with pytest.raises(RuntimeError, match="already installed"):
                install(_plan())

    def test_uninstall_is_idempotent(self):
        uninstall()
        uninstall()
        assert inject.installed() is None

    def test_uninstalled_even_when_body_raises(self):
        with pytest.raises(ValueError):
            with injector(_plan()):
                raise ValueError("boom")
        assert inject.installed() is None


class TestFaultInjected:
    def test_defaults(self):
        exc = FaultInjected("harness.flake")
        assert exc.transient is True
        assert exc.injected is True
        assert "harness.flake" in str(exc)

    def test_non_transient(self):
        exc = FaultInjected("sched.journal.torn_write", "torn", False)
        assert exc.transient is False
        assert str(exc) == "torn"
