"""The chaos invariant suite, pinned as regressions (the same checks
``repro chaos`` runs from the command line)."""

from repro.faults import FaultPlan, injector
from repro.faults.chaos import (
    ChaosReport,
    chaos_slice,
    check_dispatch_resilience,
    check_event_determinism,
    check_guard_resilience,
    check_injector_transparency,
    check_kill_resume,
    check_profile_determinism,
    check_sched_resilience,
    check_serve_resilience,
    check_vectorize_resilience,
    run_chaos,
)
from repro.harness import evaluate_model


class TestInvariants:
    def test_injector_transparency(self):
        report = check_injector_transparency()
        assert report.passed, report.detail

    def test_event_determinism(self):
        report = check_event_determinism(seed=11)
        assert report.passed, report.detail

    def test_profile_determinism(self):
        report = check_profile_determinism(seed=11)
        assert report.passed, report.detail

    def test_vectorize_resilience(self):
        report = check_vectorize_resilience(seed=11)
        assert report.passed, report.detail

    def test_sched_resilience(self):
        report = check_sched_resilience(jobs=4)
        assert report.passed, report.detail

    def test_kill_resume(self, tmp_path):
        report = check_kill_resume(tmp_path, jobs=2)
        assert report.passed, report.detail
        assert "kill points" in report.detail

    def test_serve_resilience(self, tmp_path):
        report = check_serve_resilience(tmp_path, jobs=2)
        assert report.passed, report.detail
        assert "shard deaths" in report.detail

    def test_guard_resilience(self, tmp_path):
        report = check_guard_resilience(tmp_path, jobs=2)
        assert report.passed, report.detail
        assert "quarantined exactly once" in report.detail
        assert "SIGKILL" in report.detail

    def test_dispatch_resilience(self, tmp_path):
        report = check_dispatch_resilience(tmp_path, jobs=2)
        assert report.passed, report.detail
        assert "ledger-predicted" in report.detail


class TestSuiteDriver:
    def test_run_chaos_collects_all_reports(self, tmp_path):
        lines = []
        reports = run_chaos(seed=3, jobs=2, workdir=tmp_path,
                            log=lines.append)
        assert [r.invariant for r in reports] == [
            "injector-transparency", "event-determinism",
            "profile-determinism", "vectorize-resilience",
            "sched-resilience", "kill-resume", "serve-resilience",
            "guard-resilience", "dispatch-resilience"]
        assert all(r.passed for r in reports), \
            [r.line() for r in reports if not r.passed]
        assert any("chaos: checking" in line for line in lines)

    def test_report_line_format(self):
        assert ChaosReport("x", True, "ok").line() == "[PASS] x: ok"
        assert ChaosReport("x", False, "bad").line().startswith("[FAIL]")


class TestSeededFaultsStillTerminate:
    def test_seeded_runtime_plan_yields_only_known_statuses(self):
        """Whatever a seeded plan breaks, every sample still lands in a
        documented terminal status — faults never wedge the harness."""
        llm, bench = chaos_slice()
        plan = FaultPlan.from_seed(23).restricted(("runtime", "harness"))
        with injector(plan):
            run = evaluate_model(llm, bench, num_samples=2,
                                 temperature=0.2, with_timing=True, seed=7)
        allowed = {"correct", "wrong_answer", "runtime_error", "timeout",
                   "not_parallel", "static_fail", "build_error",
                   "system_error", "degraded"}
        seen = {s.status for r in run.prompts.values() for s in r.samples}
        assert seen <= allowed
