"""Runtime-layer injection points, driven directly at the runtime API:
MPI message perturbation, the wedged-rank host watchdog, GPU kernel
aborts, OpenMP straggler stalls, and the per-ExecCtx memory budget."""

import pytest

from repro.faults import FaultInjected, FaultPlan, FaultRule, injector
from repro.lang.errors import DeadlockError, MemoryExhausted, RuntimeFailure
from repro.runtime import DEFAULT_MACHINE, ExecCtx, SerialRuntime, run_mpi

from ..runtime.helpers import compiled, farr, run_omp, run_serial


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


SEND_RECV = """
kernel f(x: array<float>) -> float {
    if (mpi_rank() == 1) {
        mpi_send(42.5, 0, 0);
        return 0.0;
    } else {
        return mpi_recv_float(1, 0);
    }
}
"""

TWO_SENDS = """
kernel f(x: array<float>) -> float {
    if (mpi_rank() == 1) {
        mpi_send(1.0, 0, 0);
        mpi_send(2.0, 0, 0);
        return 0.0;
    } else {
        let a = mpi_recv_float(1, 0);
        let b = mpi_recv_float(1, 0);
        return a * 10.0 + b;
    }
}
"""

REDUCE = """
kernel f(x: array<float>) -> float {
    let local = x[mpi_rank()];
    return mpi_reduce_float(local, "sum", 0);
}
"""


class TestMPIMessageFaults:
    def test_dropped_message_deadlocks_the_receiver(self):
        rule = FaultRule(point="runtime.mpi.msg", action="drop",
                         match="1->0")
        with injector(_plan(rule)):
            res = run_mpi(compiled(SEND_RECV), "f", [farr([0])], 2,
                          DEFAULT_MACHINE)
        assert isinstance(res.error, DeadlockError)

    def test_duplicated_message_leaves_result_intact(self):
        rule = FaultRule(point="runtime.mpi.msg", action="dup",
                         match="1->0")
        with injector(_plan(rule)):
            res = run_mpi(compiled(SEND_RECV), "f", [farr([0])], 2,
                          DEFAULT_MACHINE)
        assert res.error is None
        assert res.ret == 42.5

    def test_reordered_message_swaps_delivery(self):
        # fault the second send on channel 1->0: it jumps the queue
        rule = FaultRule(point="runtime.mpi.msg", action="reorder",
                         match="1->0", occurrences=(1,))
        clean = run_mpi(compiled(TWO_SENDS), "f", [farr([0])], 2,
                        DEFAULT_MACHINE)
        assert clean.error is None and clean.ret == 12.0
        with injector(_plan(rule)):
            res = run_mpi(compiled(TWO_SENDS), "f", [farr([0])], 2,
                          DEFAULT_MACHINE)
        assert res.error is None
        assert res.ret == 21.0

    def test_faults_are_deterministic_across_runs(self):
        rule = FaultRule(point="runtime.mpi.msg", action="reorder",
                         match="1->0", occurrences=(1,))
        outcomes = []
        for _ in range(2):
            with injector(_plan(rule)) as inj:
                res = run_mpi(compiled(TWO_SENDS), "f", [farr([0])], 2,
                              DEFAULT_MACHINE)
            outcomes.append((res.ret, inj.canonical_log()))
        assert outcomes[0] == outcomes[1]


class TestHostWatchdog:
    """Satellite: the wedged-rank abort in run_mpi, previously uncovered.

    A stalled rank sleeps *outside* the communication layer, so the
    deadlock detector cannot see it; only the host-side bounded join can
    end the job."""

    def test_wedged_rank_trips_the_watchdog(self):
        rule = FaultRule(point="runtime.mpi.stall", action="stall",
                         match="rank1", param=2.0)
        with injector(_plan(rule)):
            res = run_mpi(compiled(REDUCE), "f", [farr([1, 2])], 2,
                          DEFAULT_MACHINE, watchdog_timeout=0.2)
        assert isinstance(res.error, RuntimeFailure)
        assert "watchdog" in str(res.error)

    def test_short_stall_inside_the_timeout_recovers(self):
        rule = FaultRule(point="runtime.mpi.stall", action="stall",
                         match="rank1", param=0.05)
        with injector(_plan(rule)):
            res = run_mpi(compiled(REDUCE), "f", [farr([1, 2])], 2,
                          DEFAULT_MACHINE, watchdog_timeout=10.0)
        assert res.error is None
        assert res.ret == 3.0


class TestGPUAbort:
    RELU = """
    kernel relu(x: array<float>) {
        let i = block_idx() * block_dim() + thread_idx();
        if (i < len(x)) {
            x[i] = max(x[i], 0.0);
        }
    }
    """

    def test_injected_abort_surfaces_as_launch_error(self):
        from repro.runtime import launch

        rule = FaultRule(point="runtime.gpu.abort", action="abort")
        with injector(_plan(rule)):
            res = launch(compiled(self.RELU), "relu", [farr([-1.0, 2.0])],
                         2, DEFAULT_MACHINE, dialect="cuda")
        assert isinstance(res.error, FaultInjected)
        assert res.error.point == "runtime.gpu.abort"

    def test_second_launch_is_unaffected(self):
        from repro.runtime import launch

        rule = FaultRule(point="runtime.gpu.abort", action="abort")
        x = farr([-1.0, 2.0])
        with injector(_plan(rule)):
            first = launch(compiled(self.RELU), "relu", [x], 2,
                           DEFAULT_MACHINE, dialect="cuda")
            second = launch(compiled(self.RELU), "relu", [x], 2,
                            DEFAULT_MACHINE, dialect="cuda")
        assert first.error is not None
        assert second.error is None
        assert x.data == [0.0, 2.0]


OMP_SUM = """
kernel f(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""


class TestOMPStall:
    def test_straggler_slows_parallel_but_not_serial(self):
        clean_ret, clean_ctx = run_omp(OMP_SUM, "f", [farr([1, 2, 3, 4])])
        rule = FaultRule(point="runtime.omp.stall", action="stall",
                         param=0.5)
        with injector(_plan(rule)):
            ret, ctx = run_omp(OMP_SUM, "f", [farr([1, 2, 3, 4])])
        assert ret == clean_ret == 10.0             # values are untouched
        # every multi-thread adjustment absorbed the straggler's stall;
        # the one-thread "team" has no straggler to wait on
        assert ctx.parallel_adjust[1] == clean_ctx.parallel_adjust[1]
        for t, adj in ctx.parallel_adjust.items():
            if t > 1:
                assert adj > clean_ctx.parallel_adjust[t]


class TestMemoryBudget:
    def test_charge_alloc_enforces_budget(self):
        ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
        assert ctx.mem_budget == float("inf")
        ctx.mem_budget = 128.0
        ctx.charge_alloc(64.0)
        with pytest.raises(MemoryExhausted, match="memory budget"):
            ctx.charge_alloc(128.0)

    def test_budget_rule_applies_to_ctx_at_creation(self):
        rule = FaultRule(point="runtime.mem.budget", action="oom",
                         param=64.0)
        with injector(_plan(rule)):
            ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
        assert ctx.mem_budget == 64.0

    def test_alloc_builtin_hits_the_budget(self):
        src = """
        kernel f(x: array<float>) -> float {
            let scratch = alloc_float(len(x));
            let total = 0.0;
            for (i in 0..len(x)) {
                scratch[i] = x[i];
                total += scratch[i];
            }
            return total;
        }
        """
        ret, _ = run_serial(src, "f", [farr([1, 2, 3])])
        assert ret == 6.0
        rule = FaultRule(point="runtime.mem.budget", action="oom",
                         param=16.0)
        with injector(_plan(rule)):
            with pytest.raises(MemoryExhausted, match="simulated node OOM"):
                run_serial(src, "f", [farr([1, 2, 3])])
