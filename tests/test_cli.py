"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_prompt(self, capsys):
        assert main(["prompt", "scan/partial_minimums/kokkos"]) == 0
        out = capsys.readouterr().out
        assert "Kokkos" in out
        assert "kernel partial_minimums" in out

    def test_prompt_unknown(self, capsys):
        assert main(["prompt", "bogus/uid/here"]) == 2

    def test_run(self, capsys):
        assert main(["run", "transform/relu/openmp", "--model", "GPT-4",
                     "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "pass@1 estimate:" in out

    def test_run_with_timing_and_verbose(self, capsys):
        assert main(["run", "reduce/sum_of_elements/serial",
                     "--model", "GPT-3.5", "--samples", "2",
                     "--timing", "-v"]) == 0
        out = capsys.readouterr().out
        assert "kernel sum_of_elements" in out

    def test_eval_slice(self, capsys):
        assert main([
            "eval", "--models", "CodeLlama-7B",
            "--ptypes", "transform", "--exec", "serial,openmp",
            "--samples", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_eval_no_static_screen(self, capsys):
        assert main([
            "eval", "--models", "CodeLlama-7B",
            "--ptypes", "transform", "--exec", "serial",
            "--samples", "2", "--no-static-screen",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["eval", "--models", "GPT-4", "--ptypes", "transform",
                  "--exec", "serial", "--samples", "2", "--jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_bad_repro_samples_is_a_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "abc")
        assert main(["eval", "--models", "GPT-4", "--ptypes", "transform",
                     "--exec", "serial", "--samples", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") or "error:" in err
        assert "REPRO_SAMPLES" in err

    def test_parallel_eval_slice(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main([
            "eval", "--models", "CodeLlama-7B",
            "--ptypes", "transform", "--exec", "serial,openmp",
            "--samples", "2", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out


class TestProfileCommand:
    def test_reference_solution_cost_tree(self, capsys):
        assert main(["profile", "stencil/jacobi_2d/openmp"]) == 0
        out = capsys.readouterr().out
        assert "solution[0]" in out and "correct" in out
        assert "n=1" in out and "n=32" in out
        assert "compute" in out and "fork_join" in out
        assert "Karp–Flatt" in out
        assert "counters:" in out and "parallel_regions=1" in out

    def test_llm_samples(self, capsys):
        assert main(["profile", "transform/relu/openmp",
                     "--model", "GPT-4", "--samples", "2", "--all"]) == 0
        out = capsys.readouterr().out
        assert "GPT-4[0]" in out and "GPT-4[1]" in out

    def test_unknown_uid(self, capsys):
        assert main(["profile", "bogus/uid/here"]) == 2
        assert "unknown prompt" in capsys.readouterr().err

    def test_eval_profile_requires_timing(self, capsys):
        assert main(["eval", "--models", "GPT-3.5", "--ptypes",
                     "transform", "--exec", "serial", "--samples", "1",
                     "--profile"]) == 2
        assert "with_timing" in capsys.readouterr().err

    def test_eval_profile_prints_lost_cycles(self, capsys):
        assert main([
            "eval", "--models", "GPT-3.5", "--ptypes", "stencil",
            "--exec", "openmp,kokkos", "--samples", "2",
            "--timing", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "lost-cycles share" in out


_RACY = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

_CLEAN = """
kernel relu(x: array<float>) {
    pragma omp parallel for
    for (i in 0..len(x)) {
        x[i] = max(x[i], 0.0);
    }
}
"""


class TestLintCommand:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        f = tmp_path / "clean.minipar"
        f.write_text(_CLEAN)
        assert main(["lint", str(f)]) == 0
        assert "clean under 'openmp'" in capsys.readouterr().out

    def test_definite_race_exits_one(self, capsys, tmp_path):
        f = tmp_path / "racy.minipar"
        f.write_text(_RACY)
        assert main(["lint", str(f)]) == 1
        out = capsys.readouterr().out
        assert "error[race/" in out

    def test_explicit_exec_model_overrides_detection(self, capsys, tmp_path):
        f = tmp_path / "racy.minipar"
        f.write_text(_RACY)
        # under serial the pragma is inert: no race regions to analyze,
        # but the usage analyzer has nothing to complain about either
        assert main(["lint", str(f), "--exec", "serial"]) == 0

    def test_build_error_exits_two(self, capsys, tmp_path):
        f = tmp_path / "broken.minipar"
        f.write_text("kernel nope(")
        assert main(["lint", str(f)]) == 2
        assert "build error" in capsys.readouterr().err

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/no/such/file.minipar"]) == 2

    def test_no_file_and_no_corpus_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_corpus_sweep_is_clean(self, capsys):
        assert main(["lint", "--corpus"]) == 0
        out = capsys.readouterr().out
        assert "0 definite" in out


class TestChaosCommand:
    def test_plan_mode_writes_the_schedule(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        out_file = tmp_path / "plan.json"
        assert main(["chaos", "--seed", "42", "--plan", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "fault plan for seed 42" in out
        plan = FaultPlan.from_json(out_file.read_text())
        assert plan == FaultPlan.from_seed(42)

    def test_chaos_suite_passes(self, capsys):
        assert main(["chaos", "--seed", "11", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "9/9 invariants hold" in out
        assert "[FAIL]" not in out

    def test_single_invariant_filter(self, capsys):
        assert main(["chaos", "--seed", "11", "--jobs", "2",
                     "--invariant", "injector-transparency"]) == 0
        out = capsys.readouterr().out
        assert "1/1 invariants hold" in out
        assert "injector-transparency" in out

    def test_unknown_invariant_is_an_error(self, capsys):
        assert main(["chaos", "--invariant", "no-such-invariant"]) == 2
        assert "unknown invariant" in capsys.readouterr().err
