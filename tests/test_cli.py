"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_prompt(self, capsys):
        assert main(["prompt", "scan/partial_minimums/kokkos"]) == 0
        out = capsys.readouterr().out
        assert "Kokkos" in out
        assert "kernel partial_minimums" in out

    def test_prompt_unknown(self, capsys):
        assert main(["prompt", "bogus/uid/here"]) == 2

    def test_run(self, capsys):
        assert main(["run", "transform/relu/openmp", "--model", "GPT-4",
                     "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "pass@1 estimate:" in out

    def test_run_with_timing_and_verbose(self, capsys):
        assert main(["run", "reduce/sum_of_elements/serial",
                     "--model", "GPT-3.5", "--samples", "2",
                     "--timing", "-v"]) == 0
        out = capsys.readouterr().out
        assert "kernel sum_of_elements" in out

    def test_eval_slice(self, capsys):
        assert main([
            "eval", "--models", "CodeLlama-7B",
            "--ptypes", "transform", "--exec", "serial,openmp",
            "--samples", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["eval", "--models", "GPT-4", "--ptypes", "transform",
                  "--exec", "serial", "--samples", "2", "--jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_bad_repro_samples_is_a_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "abc")
        assert main(["eval", "--models", "GPT-4", "--ptypes", "transform",
                     "--exec", "serial", "--samples", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") or "error:" in err
        assert "REPRO_SAMPLES" in err

    def test_parallel_eval_slice(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main([
            "eval", "--models", "CodeLlama-7B",
            "--ptypes", "transform", "--exec", "serial,openmp",
            "--samples", "2", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out
