"""Differential golden tests: a served result is byte-identical to the
direct ``evaluate_model`` call it stands in for — records, CSV export,
profiles, and digest — plus request validation and ticket lifecycle."""

import pytest

from repro.analysis import profile_csv, to_csv
from repro.serve import EvalRequest, ServiceClient
from repro.serve.service import DONE

from .conftest import direct_reference, make_request, run_with_service


class TestDifferentialGolden:
    def test_served_run_is_byte_identical(self, tmp_path, direct_run):
        async def go(service):
            return await ServiceClient(service).evaluate(make_request())

        served, service = run_with_service(tmp_path, go)
        assert served.to_json() == direct_run.to_json()
        assert served.digest() == direct_run.digest()
        assert to_csv(served) == to_csv(direct_run)

    def test_served_profiled_run_matches_direct(self, tmp_path):
        request = make_request(with_timing=True, profile=True)
        direct = direct_reference(request)

        async def go(service):
            return await ServiceClient(service).evaluate(request)

        served, service = run_with_service(tmp_path, go)
        assert served.to_json() == direct.to_json()
        assert profile_csv(served) == profile_csv(direct)
        # profiled requests feed the service-level cost breakdown
        totals = service.metrics_snapshot()["profile_totals"]
        assert totals and all(v >= 0.0 for v in totals.values())

    def test_single_shard_service_matches_too(self, tmp_path, direct_run):
        async def go(service):
            return await ServiceClient(service).evaluate(make_request())

        served, _ = run_with_service(tmp_path, go, shards=1,
                                     jobs_per_shard=1)
        assert served.to_json() == direct_run.to_json()

    def test_sample_cache_round_trip_identical(self, tmp_path, direct_run):
        """Second request over a warm cache: zero executions, same bytes."""
        async def go(service):
            client = ServiceClient(service)
            first = await client.evaluate(make_request())
            second = await client.evaluate(make_request())
            return first, second

        (first, second), service = run_with_service(
            tmp_path, go, sample_cache=True)
        assert first.to_json() == direct_run.to_json()
        assert second.to_json() == direct_run.to_json()
        snap = service.metrics_snapshot()
        assert snap["tasks_from_cache"] > 0


class TestTicketLifecycle:
    def test_ticket_snapshot_fields(self, tmp_path):
        async def go(service):
            ticket_id = ServiceClient(service).submit(make_request())
            ticket = await service.wait(ticket_id)
            return ticket.snapshot()

        snap, _ = run_with_service(tmp_path, go)
        assert snap["status"] == DONE
        assert snap["id"].startswith("req-")
        assert snap["model"] == "GPT-3.5"
        assert snap["wait_seconds"] >= 0.0
        assert snap["run_seconds"] > 0.0
        assert len(snap["digest"]) == 64

    def test_unknown_ticket_is_none(self, tmp_path):
        async def go(service):
            return service.get("req-999999")

        ticket, _ = run_with_service(tmp_path, go)
        assert ticket is None


class TestRequestValidation:
    def test_minimal_valid(self):
        req = EvalRequest.from_dict({"model": "GPT-3.5"})
        assert req.samples == 1 and not req.with_timing

    def test_aliases(self):
        req = EvalRequest.from_dict({
            "model": "GPT-3.5", "exec": ["serial"], "timing": True})
        assert req.exec_models == ("serial",) and req.with_timing

    @pytest.mark.parametrize("raw", [
        "not a dict",
        {},
        {"model": "GPT-99"},
        {"model": "GPT-3.5", "ptypes": ["nope"]},
        {"model": "GPT-3.5", "exec": ["fortran"]},
        {"model": "GPT-3.5", "samples": 0},
        {"model": "GPT-3.5", "samples": True},
        {"model": "GPT-3.5", "profile": True},          # needs timing
        {"model": "GPT-3.5", "deadline": -1},
        {"model": "GPT-3.5", "bogus_field": 1},
    ])
    def test_invalid_rejected(self, raw):
        with pytest.raises(ValueError):
            EvalRequest.from_dict(raw)
