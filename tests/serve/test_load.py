"""The acceptance load test: 64 concurrent in-process clients, every
accepted request completes — zero dropped after admission."""

import asyncio

from repro.serve import Overloaded, ServiceClient
from repro.serve.service import DONE

from .conftest import direct_reference, make_request, run_with_service

N_CLIENTS = 64


class TestLoad:
    def test_64_concurrent_clients_zero_dropped(self, tmp_path):
        request = make_request()

        async def go(service):
            client = ServiceClient(service)

            async def one_client(i):
                # interleave admissions across the event loop like real
                # concurrent clients would
                await asyncio.sleep(0.001 * (i % 8))
                ticket_id = client.submit(request)
                ticket = await client.wait(ticket_id)
                return ticket

            return await asyncio.gather(
                *(one_client(i) for i in range(N_CLIENTS)))

        tickets, service = run_with_service(
            tmp_path, go, max_queue=N_CLIENTS, max_batch=N_CLIENTS,
            batch_window=0.1)
        # zero dropped after accept: every admitted request reached DONE
        assert len(tickets) == N_CLIENTS
        assert all(t.status == DONE for t in tickets), \
            {t.id: (t.status, t.error) for t in tickets if t.status != DONE}
        reference = direct_reference(request).to_json()
        assert all(t.run.to_json() == reference for t in tickets)
        snap = service.metrics_snapshot()
        assert snap["accepted"] == N_CLIENTS
        assert snap["completed"] == N_CLIENTS
        assert snap["failed"] == 0 and snap["expired"] == 0
        assert snap["queue_depth"] == 0 and snap["running"] == 0
        # identical requests: batching collapses the work massively
        assert snap["tasks_executed"] < snap["tasks_planned"]
        assert snap["wait_seconds"]["count"] == N_CLIENTS

    def test_overloaded_burst_rejects_but_never_drops(self, tmp_path):
        """Admission beyond the queue bound 429s; everything admitted
        still completes."""
        request = make_request()

        async def go(service):
            service.pause()
            client = ServiceClient(service)
            admitted, rejected = [], 0
            for _ in range(N_CLIENTS):
                try:
                    admitted.append(client.submit(request))
                except Overloaded:
                    rejected += 1
            service.resume()
            tickets = await asyncio.gather(
                *(client.wait(i) for i in admitted))
            return tickets, rejected

        (tickets, rejected), service = run_with_service(
            tmp_path, go, max_queue=8, max_batch=8, batch_window=0.1)
        assert rejected == N_CLIENTS - 8
        assert len(tickets) == 8
        assert all(t.status == DONE for t in tickets)
        snap = service.metrics_snapshot()
        assert snap["accepted"] == 8
        assert snap["rejected"] == N_CLIENTS - 8
        assert snap["completed"] == 8
