"""Per-shard circuit breakers and the capped Retry-After hint.

The breaker lifecycle is driven end-to-end through a live service: an
injected shard death with no restart budget trips shard 0's breaker,
the next batch reroutes to the survivor (and stays byte-identical to a
direct run), and the half-open probe after the deterministic cool-down
closes the breaker again.
"""

from repro.faults import FaultPlan, FaultRule, injector
from repro.guard import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.serve import ServiceClient
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import DONE

from .conftest import direct_reference, make_request, run_with_service


class TestRetryAfterCap:
    def test_default_cap_is_sixty_seconds(self):
        assert ServiceMetrics(2).retry_after_cap == 60.0

    def test_cap_floor_is_one_second(self):
        assert ServiceMetrics(2, retry_after_cap=0.25).retry_after_cap == 1.0

    def test_custom_cap_bounds_a_pathological_estimate(self):
        """Satellite: one stalled batch must not tell clients to go away
        for hours — the hint saturates at the configured cap."""
        metrics = ServiceMetrics(1, retry_after_cap=5.0)
        metrics.record_batch(requests=1, planned=1, unique=1,
                             wall_seconds=600.0)
        assert metrics.retry_after(inflight=50) == 5

    def test_estimate_below_the_cap_passes_through(self):
        metrics = ServiceMetrics(2, retry_after_cap=60.0)
        metrics.record_batch(requests=1, planned=1, unique=1,
                             wall_seconds=2.0)
        assert metrics.retry_after(inflight=2) == 2

    def test_hint_rounds_up(self):
        metrics = ServiceMetrics(2)
        metrics.record_batch(requests=1, planned=1, unique=1,
                             wall_seconds=1.0)
        assert metrics.retry_after(inflight=3) == 2      # 1.5s, ceil

    def test_open_breakers_raise_the_hint(self):
        """Tripped shards take no work, so the same queue drains slower;
        with no survivors the hint sticks at the cap."""
        metrics = ServiceMetrics(4, retry_after_cap=30.0)
        metrics.record_batch(requests=1, planned=1, unique=1,
                             wall_seconds=2.0)
        closed = metrics.retry_after(inflight=8)
        halved = metrics.retry_after(inflight=8, open_breakers=2)
        assert closed == 4 and halved == 8
        assert metrics.retry_after(inflight=8, open_breakers=4) == 30


class TestBreakerExposure:
    def test_healthy_run_reports_closed_breakers(self, tmp_path):
        async def go(service):
            return await ServiceClient(service).evaluate(make_request())

        run, service = run_with_service(tmp_path, go)
        assert run.prompts
        snap = service.metrics_snapshot()
        assert snap["breakers_open"] == 0
        assert set(snap["breakers"]) == {"0", "1"}
        assert all(b["state"] == STATE_CLOSED
                   for b in snap["breakers"].values())


class TestBreakerLifecycle:
    def test_trip_reroute_and_half_open_recovery(self, tmp_path):
        """Shard 0 dies once with no restart budget: its breaker trips,
        the next batch routes around it byte-identically, and after the
        cool-down a half-open probe closes it again."""
        plan = FaultPlan(rules=(
            FaultRule(point="serve.shard.die", action="abort",
                      match="shard0", occurrences=(0,)),))

        async def go(service):
            client = ServiceClient(service)
            ticket1 = await client.wait(client.submit(make_request()))
            state_after_trip = service.breakers.breakers[0].state
            open_snap = service.metrics_snapshot()
            run2 = await client.evaluate(make_request())
            state_while_routed = service.breakers.breakers[0].state
            reroutes = list(service.breakers.reroutes)
            run3 = await client.evaluate(make_request())
            return (ticket1, state_after_trip, open_snap, run2,
                    state_while_routed, reroutes, run3)

        with injector(plan):
            (ticket1, tripped, open_snap, run2, routed_state, reroutes,
             run3), service = run_with_service(
                tmp_path, go, jobs_per_shard=1, max_shard_restarts=0,
                breaker_threshold=1, breaker_cooldown=2)

        reference = direct_reference(make_request()).to_json()
        # the dying shard degraded its batch, it did not kill it
        assert ticket1.status == DONE
        assert tripped == STATE_OPEN
        assert open_snap["breakers"]["0"]["state"] == STATE_OPEN
        assert open_snap["breakers_open"] == 1
        # while open, shard 0's partition ran on the survivor — and the
        # served run is still byte-identical to a direct one
        assert (0, 1) in reroutes
        assert routed_state in (STATE_OPEN, STATE_HALF_OPEN)
        assert run2.to_json() == reference
        # cool-down elapsed: the half-open probe succeeded and closed it
        assert run3.to_json() == reference
        assert service.breakers.breakers[0].state == STATE_CLOSED
        assert service.metrics_snapshot()["breakers_open"] == 0
