"""Micro-batching and cross-request deduplication.

Two concurrent requests with overlapping benchmark slices must coalesce:
the batch executes strictly fewer tasks than the naive per-request sum,
and each request still gets back exactly the run a direct evaluation
would have produced (correct demultiplexing)."""

import asyncio

from repro.serve import ServiceClient, plan_batch, union_tasks
from repro.harness import Runner

from .conftest import direct_reference, make_request, run_with_service


def overlapping_requests():
    """Identical slice except one adds the kokkos column — the serial and
    openmp tasks are shared, the kokkos ones are not."""
    a = make_request()
    b = make_request(exec_models=("serial", "openmp", "kokkos"))
    return a, b


class TestCoalescing:
    def test_overlap_executes_fewer_than_naive_sum(self, tmp_path):
        a, b = overlapping_requests()

        async def go(service):
            client = ServiceClient(service)
            # submit both before yielding so one batch window sees both
            id_a, id_b = client.submit(a), client.submit(b)
            return await asyncio.gather(client.result(id_a),
                                        client.result(id_b))

        (run_a, run_b), service = run_with_service(
            tmp_path, go, batch_window=0.5)
        snap = service.metrics_snapshot()
        assert snap["batches"] == 1, "requests were not coalesced"
        assert snap["batched_requests"] == 2
        assert snap["tasks_unique"] < snap["tasks_planned"]
        assert snap["tasks_deduped"] == (snap["tasks_planned"]
                                         - snap["tasks_unique"])
        assert snap["tasks_executed"] == snap["tasks_unique"]
        # demux correctness: each request got its own exact run
        assert run_a.to_json() == direct_reference(a).to_json()
        assert run_b.to_json() == direct_reference(b).to_json()

    def test_identical_requests_fully_dedup(self, tmp_path):
        request = make_request()

        async def go(service):
            client = ServiceClient(service)
            ids = [client.submit(request) for _ in range(3)]
            return await asyncio.gather(*(client.result(i) for i in ids))

        runs, service = run_with_service(tmp_path, go, batch_window=0.5)
        snap = service.metrics_snapshot()
        assert snap["batches"] == 1
        assert snap["tasks_planned"] == 3 * snap["tasks_unique"]
        reference = direct_reference(request).to_json()
        assert all(r.to_json() == reference for r in runs)

    def test_batching_disabled_runs_separate_batches(self, tmp_path):
        request = make_request()

        async def go(service):
            client = ServiceClient(service)
            ids = [client.submit(request) for _ in range(2)]
            return await asyncio.gather(*(client.result(i) for i in ids))

        runs, service = run_with_service(tmp_path, go, batching=False)
        snap = service.metrics_snapshot()
        assert snap["batches"] == 2
        reference = direct_reference(request).to_json()
        assert all(r.to_json() == reference for r in runs)


class TestUnionPlanning:
    def test_union_tasks_is_content_dedup(self):
        a, b = overlapping_requests()
        plans, ptypes, models = plan_batch([a, b], Runner())
        union = union_tasks(plans)
        naive = sum(len(p.tasks) for p in plans)
        assert len(union) < naive
        # the union covers every plan's tasks exactly
        for plan in plans:
            assert set(plan.tasks) <= set(union)
        assert set(union) == set(plans[0].tasks) | set(plans[1].tasks)
        # worker-init slice is the union of the requests' slices
        assert ptypes == ("transform",)
        assert models == ("serial", "openmp", "kokkos")
