"""The shard layer in isolation: deterministic partitioning (hash and
cost-balanced), the work-stealing TaskBoard, journal resume after
injected shard death, and journal salvage when the restart budget runs
out."""

import pytest

from repro.faults import FaultPlan, FaultRule, injector
from repro.harness import Runner
from repro.sched import TRANSIENT_STATUSES, shard_for
from repro.serve import ServiceClient, TaskBoard, plan_request, run_shard
from repro.serve.batcher import batch_key, partition_tasks, union_tasks

from .conftest import make_request, run_with_service


@pytest.fixture(scope="module")
def union():
    plan = plan_request(make_request(), Runner())
    return union_tasks([plan])


class TestPartition:
    def test_partition_is_disjoint_and_complete(self, union):
        parts = partition_tasks(union, 3)
        assert sum(len(p) for p in parts) == len(union)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)
        assert seen == set(union)

    def test_shard_assignment_is_pure(self, union):
        for tid in union:
            assert shard_for(tid, 4) == shard_for(tid, 4)
            assert 0 <= shard_for(tid, 4) < 4

    def test_one_shard_gets_everything(self, union):
        (only,) = partition_tasks(union, 1)
        assert only == union

    def test_shard_for_rejects_zero(self):
        with pytest.raises(ValueError):
            shard_for("abcd1234", 0)

    def test_batch_key_is_order_insensitive(self, union):
        items = list(union.items())
        reversed_union = dict(reversed(items))
        assert batch_key(union) == batch_key(reversed_union)
        assert batch_key(union) != batch_key(dict(items[:1]))


class TestCostBalancedPartition:
    def _predictions(self, union, heavy):
        return {tid: ((100.0, "ledger") if tid == heavy else
                      (1.0, "estimator")) for tid in union}

    def test_balanced_partition_is_disjoint_and_complete(self, union):
        heavy = next(iter(union))
        parts = partition_tasks(union, 3, self._predictions(union, heavy))
        assert sum(len(p) for p in parts) == len(union)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)
        assert seen == set(union)

    def test_heavy_task_gets_the_lightest_bin(self, union):
        # one 100-unit task among 1-unit tasks: LPT places it first,
        # alone, and packs everything else onto the other bins
        heavy = sorted(union)[0]
        parts = partition_tasks(union, 3, self._predictions(union, heavy))
        (heavy_part,) = [p for p in parts if heavy in p]
        assert list(heavy_part)[0] == heavy     # parts are longest-first
        others = [p for p in parts if heavy not in p]
        assert len(heavy_part) <= min(len(p) for p in others)

    def test_balanced_partition_is_deterministic(self, union):
        heavy = next(iter(union))
        preds = self._predictions(union, heavy)
        one = partition_tasks(union, 3, preds)
        two = partition_tasks(union, 3, preds)
        assert [list(p) for p in one] == [list(p) for p in two]

    def test_no_predictions_keeps_the_legacy_hash_partition(self, union):
        parts = partition_tasks(union, 3)
        for shard_id, part in enumerate(parts):
            for tid in part:
                assert shard_for(tid, 3) == shard_id


class TestTaskBoard:
    def _board(self):
        return TaskBoard({0: {"a0": "SA0", "a1": "SA1"},
                          1: {"b0": "SB0", "b1": "SB1", "b2": "SB2"}})

    def test_own_queue_first_in_order(self):
        board = self._board()
        assert board.claim(0) == ("a0", "SA0")
        assert board.claim(0) == ("a1", "SA1")
        assert board.depth() == 3

    def test_drained_shard_steals_from_the_deepest(self):
        board = self._board()
        board.claim(0), board.claim(0)
        # shard 0 is empty; shard 1 still holds b0..b2 — steal its front
        tid, spec = board.claim(0)
        assert (tid, spec) == ("b0", "SB0")
        assert board.steals == 1
        assert board.claim(1) == ("b1", "SB1")  # owner keeps the rest

    def test_exhausted_board_claims_none(self):
        board = TaskBoard({0: {"a0": "SA0"}})
        assert board.claim(0) == ("a0", "SA0")
        assert board.claim(0) is None
        assert board.steals == 0                # nothing to steal from

    def test_release_returns_unsettled_claims(self):
        board = self._board()
        board.claim(1), board.claim(1)          # b0, b1 in flight
        board.release(1, settled={"b0"})        # died after finishing b0
        # b1 is queued again at the front; b0 stays settled
        assert board.claim(1) == ("b1", "SB1")
        assert board.claim(1) == ("b2", "SB2")
        assert board.claim(1) is None or board.claim(1)[0].startswith("a")

    def test_specs_merge_every_partition(self):
        board = self._board()
        assert set(board.specs) == {"a0", "a1", "b0", "b1", "b2"}


class TestServiceDispatchDifferential:
    """--dispatch lpt (balanced + stealing) vs fifo (legacy hash): the
    same bytes, proven through a live service."""

    def test_lpt_and_fifo_served_runs_match(self, tmp_path, direct_run):
        async def go(service):
            return await ServiceClient(service).evaluate(make_request())

        lpt, lpt_service = run_with_service(
            tmp_path / "lpt", go, dispatch="lpt")
        fifo, _ = run_with_service(tmp_path / "fifo", go, dispatch="fifo")
        assert lpt.to_json() == direct_run.to_json()
        assert fifo.to_json() == direct_run.to_json()
        # the lpt service actually predicted (cold ledger: estimator)
        snap = lpt_service.metrics_snapshot()
        assert snap["estimator_predictions"] + snap["ledger_predictions"] \
            == snap["tasks_executed"]

    def test_warm_ledger_service_hits_and_matches(self, tmp_path,
                                                  direct_run):
        async def go(service):
            client = ServiceClient(service)
            first = await client.evaluate(make_request())
            second = await client.evaluate(make_request())
            return first, second

        # no sample cache: the second request re-executes, now with a
        # warm duration ledger driving the shard bin-packing
        (first, second), service = run_with_service(
            tmp_path, go, dispatch="lpt", sample_cache=False)
        assert first.to_json() == direct_run.to_json()
        assert second.to_json() == direct_run.to_json()
        snap = service.metrics_snapshot()
        assert snap["ledger_predictions"] > 0
        assert 0.0 < snap["ledger_hit_rate"] <= 1.0
        assert snap["pred_mae_seconds"] >= 0.0


class TestRunShard:
    def _run(self, union, tmp_path, journal="shard.jsonl", **kw):
        return run_shard(
            0, "testbatch", union, tmp_path / journal, Runner(),
            ptypes=("transform",), models=("serial", "openmp"),
            jobs=2, **kw)

    def test_clean_run_produces_all_results(self, union, tmp_path):
        out = self._run(union, tmp_path)
        assert set(out.results) == set(union)
        assert out.restarts == 0 and out.error == ""
        assert out.telemetry.executed == len(union)

    def test_injected_death_resumes_from_journal(self, union, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(point="serve.shard.die", action="abort",
                      occurrences=(0,)),
        ), seed=0)
        with injector(plan):
            out = self._run(union, tmp_path)
        assert set(out.results) == set(union)
        assert out.restarts == 1
        # journal-then-notify: the task that finished just before the
        # death was already committed, so the resume replays it
        assert out.telemetry.from_journal >= 1
        # the same tasks clean run, for comparison
        clean = self._run(union, tmp_path, journal="clean.jsonl")
        assert {t: r.get("status") for t, r in out.results.items()} \
            == {t: r.get("status") for t, r in clean.results.items()}

    def test_restart_budget_exhausted_salvages_journal(self, union, tmp_path):
        # die on every shard-death occurrence: each restart immediately
        # re-dies after its first finished task
        plan = FaultPlan(rules=(
            FaultRule(point="serve.shard.die", action="abort",
                      occurrences=None),
        ), seed=0)
        with injector(plan):
            out = self._run(union, tmp_path, max_restarts=1)
        assert out.restarts == 1
        assert out.error != ""
        # journal salvage: the tasks committed before each death survive
        assert out.results
        assert set(out.results) < set(union)
        for payload in out.results.values():
            assert payload.get("status") not in TRANSIENT_STATUSES
