"""The shard layer in isolation: deterministic partitioning, journal
resume after injected shard death, and journal salvage when the restart
budget runs out."""

import pytest

from repro.faults import FaultPlan, FaultRule, injector
from repro.harness import Runner
from repro.sched import TRANSIENT_STATUSES, shard_for
from repro.serve import plan_request, run_shard
from repro.serve.batcher import batch_key, partition_tasks, union_tasks

from .conftest import make_request


@pytest.fixture(scope="module")
def union():
    plan = plan_request(make_request(), Runner())
    return union_tasks([plan])


class TestPartition:
    def test_partition_is_disjoint_and_complete(self, union):
        parts = partition_tasks(union, 3)
        assert sum(len(p) for p in parts) == len(union)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)
        assert seen == set(union)

    def test_shard_assignment_is_pure(self, union):
        for tid in union:
            assert shard_for(tid, 4) == shard_for(tid, 4)
            assert 0 <= shard_for(tid, 4) < 4

    def test_one_shard_gets_everything(self, union):
        (only,) = partition_tasks(union, 1)
        assert only == union

    def test_shard_for_rejects_zero(self):
        with pytest.raises(ValueError):
            shard_for("abcd1234", 0)

    def test_batch_key_is_order_insensitive(self, union):
        items = list(union.items())
        reversed_union = dict(reversed(items))
        assert batch_key(union) == batch_key(reversed_union)
        assert batch_key(union) != batch_key(dict(items[:1]))


class TestRunShard:
    def _run(self, union, tmp_path, journal="shard.jsonl", **kw):
        return run_shard(
            0, "testbatch", union, tmp_path / journal, Runner(),
            ptypes=("transform",), models=("serial", "openmp"),
            jobs=2, **kw)

    def test_clean_run_produces_all_results(self, union, tmp_path):
        out = self._run(union, tmp_path)
        assert set(out.results) == set(union)
        assert out.restarts == 0 and out.error == ""
        assert out.telemetry.executed == len(union)

    def test_injected_death_resumes_from_journal(self, union, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(point="serve.shard.die", action="abort",
                      occurrences=(0,)),
        ), seed=0)
        with injector(plan):
            out = self._run(union, tmp_path)
        assert set(out.results) == set(union)
        assert out.restarts == 1
        # journal-then-notify: the task that finished just before the
        # death was already committed, so the resume replays it
        assert out.telemetry.from_journal >= 1
        # the same tasks clean run, for comparison
        clean = self._run(union, tmp_path, journal="clean.jsonl")
        assert {t: r.get("status") for t, r in out.results.items()} \
            == {t: r.get("status") for t, r in clean.results.items()}

    def test_restart_budget_exhausted_salvages_journal(self, union, tmp_path):
        # die on every shard-death occurrence: each restart immediately
        # re-dies after its first finished task
        plan = FaultPlan(rules=(
            FaultRule(point="serve.shard.die", action="abort",
                      occurrences=None),
        ), seed=0)
        with injector(plan):
            out = self._run(union, tmp_path, max_restarts=1)
        assert out.restarts == 1
        assert out.error != ""
        # journal salvage: the tasks committed before each death survive
        assert out.results
        assert set(out.results) < set(union)
        for payload in out.results.values():
            assert payload.get("status") not in TRANSIENT_STATUSES
