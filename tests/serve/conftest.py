"""Shared fixtures for the serving-layer tests.

Every test drives the same small benchmark slice the chaos suite uses
(transform x {serial, openmp}, GPT-3.5, two samples, seed 7) so the
session-scoped direct reference run is computed once and reused by all
the differential assertions.
"""

import asyncio

import pytest

from repro.bench import PCGBench
from repro.harness import Runner, evaluate_model
from repro.models import load_model
from repro.serve import EvalRequest, EvalService

PTYPES = ("transform",)
EXEC = ("serial", "openmp")
LLM = "GPT-3.5"
SAMPLES = 2
SEED = 7


def make_request(**overrides) -> EvalRequest:
    base = dict(model=LLM, ptypes=PTYPES, exec_models=EXEC,
                samples=SAMPLES, seed=SEED)
    base.update(overrides)
    return EvalRequest(**base)


def direct_reference(request: EvalRequest):
    """What evaluate_model produces for the same request, directly."""
    return evaluate_model(
        load_model(request.model),
        PCGBench(problem_types=list(request.ptypes),
                 models=list(request.exec_models)),
        num_samples=request.samples, temperature=request.temperature,
        with_timing=request.with_timing, runner=Runner(),
        seed=request.seed, profile=request.profile)


@pytest.fixture(scope="session")
def direct_run():
    """Direct (unserved) run of the standard request."""
    return direct_reference(make_request())


def run_with_service(tmp_path, coro_fn, **service_kwargs):
    """Start a service, run ``coro_fn(service)``, drain, shut down."""
    kwargs = dict(shards=2, jobs_per_shard=2, sample_cache=False)
    kwargs.update(service_kwargs)

    async def main():
        service = EvalService(tmp_path, **kwargs)
        await service.start()
        try:
            return await coro_fn(service), service
        finally:
            await service.shutdown(drain=True)

    return asyncio.run(main())
