"""The HTTP face: every route, every error code, over a live socket."""

import asyncio
import json

import pytest

from repro.serve import EvalService, HttpServer
from repro.serve.client import HttpClient, http_request

from .conftest import make_request


def with_server(tmp_path, coro_fn, **service_kwargs):
    """Run ``coro_fn(client, service)`` against a live ephemeral-port
    server; returns its result."""
    kwargs = dict(shards=2, jobs_per_shard=2, sample_cache=False)
    kwargs.update(service_kwargs)

    async def main():
        service = EvalService(tmp_path, **kwargs)
        server = HttpServer(service, "127.0.0.1", 0)
        await service.start()
        await server.start()
        host, port = server.address
        try:
            return await coro_fn(HttpClient(host, port), service)
        finally:
            await server.stop()
            await service.shutdown(drain=True)

    return asyncio.run(main())


REQUEST_BODY = {"model": "GPT-3.5", "ptypes": ["transform"],
                "exec": ["serial", "openmp"], "samples": 2, "seed": 7}


class TestSubmitAndFetch:
    def test_full_round_trip(self, tmp_path, direct_run):
        async def go(client, service):
            status, _, body = await client.submit(REQUEST_BODY)
            assert status == 202
            snap = await client.poll_until_done(body["id"])
            code, headers, payload = await client.result(body["id"])
            return snap, code, headers, payload

        snap, code, headers, payload = with_server(tmp_path, go)
        assert snap["status"] == "done"
        assert code == 200
        assert headers["x-run-digest"] == direct_run.digest()
        assert payload.decode("utf-8") == direct_run.to_json()

    def test_csv_and_profile_views(self, tmp_path):
        body_with_profile = dict(REQUEST_BODY, timing=True, profile=True)

        async def go(client, service):
            _, _, body = await client.submit(body_with_profile)
            await client.poll_until_done(body["id"])
            rid = body["id"]
            csv_resp = await http_request(client.host, client.port, "GET",
                                          f"/v1/requests/{rid}/csv")
            prof_resp = await http_request(client.host, client.port, "GET",
                                           f"/v1/requests/{rid}/profile")
            return csv_resp, prof_resp

        (c_code, _, c_body), (p_code, _, p_body) = with_server(tmp_path, go)
        assert c_code == 200 and p_code == 200
        assert c_body.decode().startswith("llm,prompt,ptype,")
        assert p_body.decode().startswith("exec_model,n,")

    def test_result_conflict_while_pending(self, tmp_path):
        async def go(client, service):
            service.pause()
            _, _, body = await client.submit(REQUEST_BODY)
            code, _, _ = await client.result(body["id"])
            service.resume()
            await client.poll_until_done(body["id"])
            return code

        code = with_server(tmp_path, go)
        assert code == 409


class TestErrorCodes:
    @pytest.mark.parametrize("body,expect", [
        (b"not json", 400),
        (b"{}", 400),
        (json.dumps({"model": "nope"}).encode(), 400),
    ])
    def test_submit_errors(self, tmp_path, body, expect):
        async def go(client, service):
            code, _, _ = await http_request(client.host, client.port,
                                            "POST", "/v1/eval", body)
            return code

        assert with_server(tmp_path, go) == expect

    def test_overload_maps_to_429_with_retry_after(self, tmp_path):
        async def go(client, service):
            service.pause()
            accepted, _, _ = await client.submit(REQUEST_BODY)
            code, headers, _ = await http_request(
                client.host, client.port, "POST", "/v1/eval",
                json.dumps(REQUEST_BODY).encode())
            service.resume()
            _, _, body = await http_request(
                client.host, client.port, "GET", "/v1/eval-noroute")
            return accepted, code, headers

        accepted, code, headers = with_server(tmp_path, go, max_queue=1)
        assert accepted == 202
        assert code == 429
        assert int(headers["retry-after"]) >= 1

    def test_unknown_request_404(self, tmp_path):
        async def go(client, service):
            code, _, _ = await http_request(client.host, client.port, "GET",
                                            "/v1/requests/req-424242")
            return code

        assert with_server(tmp_path, go) == 404

    def test_unknown_route_404_and_wrong_method_405(self, tmp_path):
        async def go(client, service):
            a, _, _ = await http_request(client.host, client.port, "GET",
                                         "/nope")
            b, _, _ = await http_request(client.host, client.port, "GET",
                                         "/v1/eval")
            c, _, _ = await http_request(client.host, client.port, "POST",
                                         "/metrics")
            return a, b, c

        assert with_server(tmp_path, go) == (404, 405, 405)

    def test_expired_request_maps_to_410(self, tmp_path):
        async def go(client, service):
            service.pause()
            _, _, body = await client.submit(
                dict(REQUEST_BODY, deadline=0.01))
            await asyncio.sleep(0.05)
            service.resume()
            snap = await client.poll_until_done(body["id"])
            code, _, _ = await client.result(body["id"])
            return snap, code

        snap, code = with_server(tmp_path, go)
        assert snap["status"] == "expired"
        assert code == 410


class TestObservability:
    def test_metrics_json_and_csv(self, tmp_path):
        async def go(client, service):
            _, _, body = await client.submit(REQUEST_BODY)
            await client.poll_until_done(body["id"])
            metrics = await client.metrics()
            code, _, csv_body = await http_request(
                client.host, client.port, "GET", "/metrics.csv")
            health_code, _, health = await http_request(
                client.host, client.port, "GET", "/healthz")
            return metrics, code, csv_body, health_code, health

        metrics, code, csv_body, health_code, health = \
            with_server(tmp_path, go)
        assert metrics["completed"] == 1
        assert metrics["tasks_executed"] > 0
        assert metrics["run_seconds"]["count"] == 1
        assert code == 200
        lines = csv_body.decode().splitlines()
        assert lines[0] == "section,key,value"
        assert any(line.startswith("service,completed,1") for line in lines)
        assert any(line.startswith("shards,") for line in lines)
        assert health_code == 200
        assert json.loads(health)["ok"] is True
