"""Admission control: bounded queue, overload rejection, deadlines, and
graceful shutdown.  Determinism comes from ``pause()`` — the batch loop
is held so queue occupancy is fully under test control."""

import asyncio

import pytest

from repro.serve import EvalService, Overloaded, ServiceClient, ServiceClosed
from repro.serve.service import DONE, EXPIRED

from .conftest import direct_reference, make_request, run_with_service


class TestOverload:
    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        async def go(service):
            service.pause()
            client = ServiceClient(service)
            accepted = [client.submit(make_request()) for _ in range(3)]
            with pytest.raises(Overloaded) as err:
                client.submit(make_request())
            retry_after = err.value.retry_after
            # rejection must not corrupt the accepted requests: they all
            # complete once the loop resumes
            service.resume()
            runs = await asyncio.gather(
                *(client.result(i) for i in accepted))
            return retry_after, runs

        (retry_after, runs), service = run_with_service(
            tmp_path, go, max_queue=3, batch_window=0.2)
        assert 1 <= retry_after <= 60
        reference = direct_reference(make_request()).to_json()
        assert all(r.to_json() == reference for r in runs)
        snap = service.metrics_snapshot()
        assert snap["rejected"] == 1
        assert snap["completed"] == 3
        assert snap["failed"] == 0

    def test_capacity_frees_after_completion(self, tmp_path):
        async def go(service):
            client = ServiceClient(service)
            first = client.submit(make_request())
            await client.wait(first)
            # the terminal ticket no longer occupies the queue
            second = client.submit(make_request())
            return await client.result(second)

        run, _ = run_with_service(tmp_path, go, max_queue=1)
        assert run.prompts


class TestDeadlines:
    def test_expired_while_queued_never_executes(self, tmp_path):
        async def go(service):
            service.pause()
            client = ServiceClient(service)
            doomed = client.submit(make_request(deadline=0.01))
            fine = client.submit(make_request())
            await asyncio.sleep(0.05)      # let the deadline lapse
            service.resume()
            doomed_ticket = await client.wait(doomed)
            fine_run = await client.result(fine)
            return doomed_ticket, fine_run

        (doomed, fine_run), service = run_with_service(tmp_path, go)
        assert doomed.status == EXPIRED
        assert doomed.run is None
        assert "deadline" in doomed.error
        assert fine_run.to_json() == direct_reference(make_request()).to_json()
        snap = service.metrics_snapshot()
        assert snap["expired"] == 1 and snap["completed"] == 1

    def test_generous_deadline_completes(self, tmp_path):
        async def go(service):
            return await ServiceClient(service).evaluate(
                make_request(deadline=300.0))

        run, _ = run_with_service(tmp_path, go)
        assert run.prompts


class TestShutdown:
    def test_drain_finishes_accepted_work(self, tmp_path):
        async def main():
            service = EvalService(tmp_path, shards=2, jobs_per_shard=2,
                                  sample_cache=False, batch_window=0.2)
            await service.start()
            client = ServiceClient(service)
            ids = [client.submit(make_request()) for _ in range(3)]
            # shutdown begins while the requests are queued/running
            await service.shutdown(drain=True)
            tickets = [service.get(i) for i in ids]
            return tickets, service

        tickets, service = asyncio.run(main())
        assert all(t.status == DONE for t in tickets)
        assert all(t.run is not None for t in tickets)
        assert service.metrics_snapshot()["completed"] == 3

    def test_submit_after_shutdown_raises(self, tmp_path):
        async def main():
            service = EvalService(tmp_path, sample_cache=False)
            await service.start()
            await service.shutdown(drain=True)
            with pytest.raises(ServiceClosed):
                service.submit(make_request())
            return service.metrics_snapshot()

        snap = asyncio.run(main())
        assert snap["rejected"] == 1
        assert snap["state"] == "closing"

    def test_no_drain_fails_queued_requests(self, tmp_path):
        async def main():
            service = EvalService(tmp_path, sample_cache=False)
            await service.start()
            service.pause()
            ticket_id = service.submit(make_request()).id
            await service.shutdown(drain=False)
            return service.get(ticket_id)

        ticket = asyncio.run(main())
        assert ticket.status == "failed"
        assert "shut down" in ticket.error
