"""Public API surface tests: everything the README/docs promise must be
importable from the documented locations, and __all__ lists must be
truthful (every name resolvable)."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.lang",
    "repro.runtime",
    "repro.bench",
    "repro.models",
    "repro.harness",
    "repro.metrics",
    "repro.analysis",
    "repro.serve",
    "repro.cli",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_module_all_is_truthful(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name!r}"


def test_readme_quickstart_names():
    import repro

    for name in ("PCGBench", "Runner", "load_model", "evaluate_model",
                 "EXECUTION_MODELS", "PROBLEM_TYPES", "compile_source",
                 "DEFAULT_MACHINE"):
        assert hasattr(repro, name), name


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_documented_exception_hierarchy():
    from repro.lang import (
        CompileError,
        DataRaceError,
        DeadlockError,
        LexError,
        MiniParError,
        ParseError,
        RuntimeFailure,
        TypeError_,
    )

    assert issubclass(LexError, CompileError)
    assert issubclass(ParseError, CompileError)
    assert issubclass(TypeError_, CompileError)
    assert issubclass(CompileError, MiniParError)
    assert issubclass(DataRaceError, RuntimeFailure)
    assert issubclass(DeadlockError, RuntimeFailure)
    # build failures and runtime failures are disjoint branches
    assert not issubclass(RuntimeFailure, CompileError)


def test_execution_models_and_types_are_canonical():
    from repro import EXECUTION_MODELS, PROBLEM_TYPES

    assert EXECUTION_MODELS == (
        "serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip")
    assert len(PROBLEM_TYPES) == 12


def test_model_zoo_matches_table2():
    from repro import MODEL_ORDER

    assert MODEL_ORDER == (
        "CodeLlama-7B", "CodeLlama-13B", "StarCoderBase", "CodeLlama-34B",
        "Phind-CodeLlama-V2", "GPT-3.5", "GPT-4",
    )
