"""Cost prediction: the duration ledger, the static estimator, and the
dispatch-order policies (``repro.sched.predict``)."""

import json

import pytest

from repro.bench import PCGBench
from repro.harness import ConfigurationError, Runner
from repro.models import load_model
from repro.sched import (
    CostEstimator,
    DISPATCH_POLICIES,
    DurationLedger,
    PRED_ESTIMATOR,
    PRED_LEDGER,
    feature_key,
    ledger_path_for,
    order_tasks,
    plan_keys,
    predict_plan,
)
from repro.sched.plan import build_plan
from repro.sched.predict import _COMPACT_AT


class TestFeatureKey:
    def test_mode_encodes_timing_and_profile(self):
        assert feature_key("sample", "relu", "openmp") \
            == "sample|relu|openmp|plain"
        assert feature_key("sample", "relu", "openmp", with_timing=True) \
            == "sample|relu|openmp|timed"
        assert feature_key("sample", "relu", "openmp", with_timing=True,
                           profile=True) == "sample|relu|openmp|timed-prof"

    def test_baseline_keys_have_no_exec_model(self):
        assert feature_key("baseline", "relu", with_timing=True) \
            == "baseline|relu||timed"


class TestDurationLedger:
    def test_cold_key_predicts_none(self, tmp_path):
        ledger = DurationLedger(tmp_path / "d.jsonl")
        assert ledger.predict("sample|relu|serial|plain") is None
        assert ledger.quantile("sample|relu|serial|plain", 0.95) is None

    def test_observe_predict_round_trip(self, tmp_path):
        ledger = DurationLedger(tmp_path / "d.jsonl")
        ledger.observe("k", 2.0)
        assert ledger.predict("k") == pytest.approx(2.0)
        # EMA with alpha=0.3 pulls toward the new observation
        ledger.observe("k", 4.0)
        assert ledger.predict("k") == pytest.approx(0.3 * 4.0 + 0.7 * 2.0)
        assert ledger.quantile("k", 1.0) == pytest.approx(4.0)

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "d.jsonl"
        with DurationLedger(path) as ledger:
            ledger.observe("k", 1.5)
        reloaded = DurationLedger(path)
        assert reloaded.predict("k") == pytest.approx(1.5)
        assert reloaded.keys == 1

    def test_concurrent_appends_merge_on_load(self, tmp_path):
        # two processes appending to the same file: both histories count
        path = tmp_path / "d.jsonl"
        a, b = DurationLedger(path), DurationLedger(path)
        a.observe("k", 1.0)
        a.close()
        b.observe("k", 3.0)
        b.close()
        merged = DurationLedger(path)
        assert merged.predict("k") == pytest.approx(0.3 * 3.0 + 0.7 * 1.0)

    def test_torn_tail_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text(
            json.dumps({"k": "good", "d": 1.0}) + "\n"
            + "not json at all\n"
            + json.dumps(["wrong", "shape"]) + "\n"
            + json.dumps({"k": "neg", "d": -5.0}) + "\n"
            + '{"k": "torn", "d"')            # killed mid-write: no newline
        ledger = DurationLedger(path)
        assert ledger.predict("good") == pytest.approx(1.0)
        assert ledger.predict("torn") is None
        assert ledger.predict("neg") is None

    def test_file_without_trailing_newline_is_all_torn(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"k": "only", "d": 1.0}')   # single torn line
        assert DurationLedger(path).predict("only") is None

    def test_negative_observations_ignored(self, tmp_path):
        ledger = DurationLedger(tmp_path / "d.jsonl")
        ledger.observe("k", -1.0)
        assert ledger.predict("k") is None

    def test_compaction_rewrites_as_summaries(self, tmp_path):
        path = tmp_path / "d.jsonl"
        ledger = DurationLedger(path)
        for i in range(_COMPACT_AT + 10):
            ledger.observe(f"key-{i % 3}", 1.0 + (i % 5))
        before = ledger.predict("key-0")
        ledger.close()
        # compacted: one summary line per key, loads to the same stats
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 3
        assert all(rec["kind"] == "summary" for rec in lines)
        reloaded = DurationLedger(path)
        assert reloaded.predict("key-0") == pytest.approx(before)
        assert reloaded.quantile("key-0", 0.95) is not None

    def test_seed_durations_warm_and_cold(self, tmp_path):
        ledger = DurationLedger(tmp_path / "d.jsonl")
        for v in (1.0, 2.0, 3.0):
            ledger.observe("warm", v)
        assert sorted(ledger.seed_durations(["warm", "cold"])) \
            == [1.0, 2.0, 3.0]
        assert ledger.seed_durations(["cold"]) == []       # cold fallback
        assert ledger.seed_durations([]) == []

    def test_seed_durations_caps_the_sample(self, tmp_path):
        ledger = DurationLedger(tmp_path / "d.jsonl")
        for i in range(40):
            ledger.observe(f"k{i}", float(i))
        assert len(ledger.seed_durations((f"k{i}" for i in range(40)),
                                         cap=10)) == 10

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        # a file path whose parent is an existing *file*: open fails, but
        # in-memory predictions keep working
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        ledger = DurationLedger(blocker / "d.jsonl")
        ledger.observe("k", 1.0)
        ledger.flush()
        ledger.close()
        assert ledger.predict("k") == pytest.approx(1.0)


class TestCostEstimator:
    def test_timed_dominates_plain(self):
        est = CostEstimator(Runner())
        src = "kernel f(x: array<float>) { for i in 0..n { x[i] = 1.0; } }"
        assert est.estimate_sample(src, "serial", True) \
            > est.estimate_sample(src, "serial", False)

    def test_sweep_width_ranks_execution_models(self):
        est = CostEstimator(Runner())
        src = "kernel f(x: array<float>) { pfor i in 0..n { x[i] = 1.0; } }"
        # openmp/kokkos sweep the thread grid; serial runs once
        assert est.estimate_sample(src, "openmp", True) \
            > est.estimate_sample(src, "serial", True)
        assert est.sweep_points("openmp") == len(Runner().thread_counts)
        assert est.sweep_points("mpi") == len(Runner().mpi_rank_counts)
        assert est.sweep_points("serial") == 1

    def test_profile_and_vectorizability_adjust(self):
        est = CostEstimator(Runner())
        vec = "kernel f(x: array<float>) { for i in 0..n { x[i] = 1.0; } }"
        non = "kernel f(x: array<float>) { for i in 0..n { x[i] = x[i] / 2.0; } }"
        assert est.estimate_sample(vec, "serial", True, profile=True) \
            > est.estimate_sample(vec, "serial", True)
        assert est.estimate_sample(non, "serial", False) \
            > est.estimate_sample(vec, "serial", False)

    def test_baseline_is_long(self):
        est = CostEstimator(Runner())
        assert est.estimate_baseline() > est.estimate_sample(
            "kernel f(x: array<float>) { fill(x, 0.0); }", "serial", False)


@pytest.fixture(scope="module")
def small_plan():
    bench = PCGBench(problem_types=["transform"], models=["serial", "openmp"])
    return build_plan(load_model("GPT-3.5"), bench, 2, 0.2, True,
                      Runner(), 7)


class TestPredictPlan:
    def test_every_task_gets_a_key_and_a_prediction(self, small_plan):
        keys = plan_keys(small_plan)
        preds = predict_plan(small_plan, Runner())
        assert set(keys) == set(small_plan.tasks)
        assert set(preds) == set(small_plan.tasks)
        assert all(prov == PRED_ESTIMATOR for _, prov in preds.values())
        assert all(value > 0 for value, _ in preds.values())

    def test_ledger_history_wins_over_estimator(self, small_plan, tmp_path):
        keys = plan_keys(small_plan)
        warm_key = next(iter(keys.values()))
        ledger = DurationLedger(tmp_path / "d.jsonl")
        ledger.observe(warm_key, 42.0)
        preds = predict_plan(small_plan, Runner(), ledger)
        for tid, key in keys.items():
            value, prov = preds[tid]
            if key == warm_key:
                assert (value, prov) == (pytest.approx(42.0), PRED_LEDGER)
            else:
                assert prov == PRED_ESTIMATOR


class TestOrderTasks:
    PREDS = {"a": (1.0, "estimator"), "b": (9.0, "estimator"),
             "c": (5.0, "estimator"), "d": (9.0, "estimator")}

    def test_fifo_preserves_plan_order(self):
        assert order_tasks(["a", "b", "c"], "fifo", self.PREDS) \
            == ["a", "b", "c"]

    def test_lpt_sorts_longest_first_with_stable_ties(self):
        # b and d tie at 9.0: plan index breaks the tie
        assert order_tasks(["a", "b", "c", "d"], "lpt", self.PREDS) \
            == ["b", "d", "c", "a"]

    def test_lpt_without_predictions_degrades_to_plan_order(self):
        assert order_tasks(["a", "b", "c"], "lpt", None) == ["a", "b", "c"]

    def test_random_is_deterministic_per_seed(self):
        ids = [f"t{i}" for i in range(16)]
        one = order_tasks(ids, "random", seed=3)
        two = order_tasks(ids, "random", seed=3)
        other = order_tasks(ids, "random", seed=4)
        assert one == two
        assert sorted(one) == sorted(ids)
        assert one != other                 # 16! orderings: collision ~0

    def test_unknown_policy_rejected_before_any_work(self):
        with pytest.raises(ConfigurationError):
            order_tasks(["a"], "shortest-first")

    def test_all_registered_policies_accepted(self):
        for policy in DISPATCH_POLICIES:
            assert sorted(order_tasks(["a", "b"], policy, self.PREDS)) \
                == ["a", "b"]


class TestLedgerPath:
    def test_lives_next_to_the_sample_cache(self, tmp_path):
        assert ledger_path_for(tmp_path) == tmp_path / "durations.jsonl"
