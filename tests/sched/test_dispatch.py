"""Dispatch-policy determinism: the ready-queue order is throughput
policy, never content.

Every problem in the benchmark, under all seven execution models, is
evaluated serially and then under each dispatch policy (``lpt``,
``fifo``, ``random``) on a parallel pool; the resulting
:class:`EvalRun` records, CSV exports, profiles, and digests must be
byte-identical.  Also covers the warm-ledger path: a second run whose
predictions come from observed history must still produce the same
bytes, while the prediction telemetry proves the ledger was actually
consulted.
"""

import pytest

from repro import evaluate_model, load_model
from repro.analysis import to_csv
from repro.analysis.export import profile_csv
from repro.bench.registry import PCGBench as Registry
from repro.harness import ConfigurationError
from repro.sched import DISPATCH_POLICIES
from repro.sched.scheduler import run_scheduled

ALL_MODELS = ["serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"]


@pytest.fixture(scope="module")
def full_bench():
    return Registry(models=ALL_MODELS)


class TestFullDifferential:
    """The acceptance gate: byte-identical EvalRuns under every policy."""

    def test_every_problem_every_model_every_policy(self, full_bench):
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9)
        reference = evaluate_model(llm, full_bench, **kwargs)
        for policy in DISPATCH_POLICIES:
            run = evaluate_model(llm, full_bench, jobs=2,
                                 dispatch=policy, **kwargs)
            assert run.to_json() == reference.to_json(), policy
            assert run.digest() == reference.digest(), policy
            assert to_csv(run) == to_csv(reference), policy

    def test_timed_profiled_slice_every_policy(self):
        # timing + profiling produce the heaviest, most skewed tasks —
        # exactly where LPT reorders hardest
        bench = Registry(problem_types=["reduce", "transform"],
                         models=ALL_MODELS)
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9,
                      with_timing=True, profile=True)
        reference = evaluate_model(llm, bench, **kwargs)
        for policy in DISPATCH_POLICIES:
            run = evaluate_model(llm, bench, jobs=2,
                                 dispatch=policy, **kwargs)
            assert run.to_json() == reference.to_json(), policy
            assert profile_csv(run) == profile_csv(reference), policy


class TestWarmLedger:
    def test_second_run_uses_history_and_matches(self, tmp_path):
        bench = Registry(problem_types=["transform"],
                         models=["serial", "openmp"])
        llm = load_model("GPT-3.5")
        kwargs = dict(num_samples=2, temperature=0.2, seed=7, jobs=2,
                      ledger_path=tmp_path / "durations.jsonl")
        cold_run, cold_tel = run_scheduled(llm, bench, **kwargs)
        # first run: every key is cold, predictions are estimator-ranked
        assert cold_tel.ledger_predictions == 0
        assert cold_tel.estimator_predictions > 0
        assert cold_tel.pred_samples == 0        # estimator units: no MAE
        warm_run, warm_tel = run_scheduled(llm, bench, **kwargs)
        # second run: same feature keys, now served from observed history
        assert warm_tel.ledger_predictions > 0
        assert warm_tel.ledger_hit_rate() == pytest.approx(1.0)
        assert warm_tel.pred_samples > 0
        assert warm_tel.pred_mae_seconds() >= 0.0
        # and the history changed dispatch order only, never bytes
        assert warm_run.to_json() == cold_run.to_json()

    def test_ledger_file_is_created_and_grows(self, tmp_path):
        bench = Registry(problem_types=["transform"], models=["serial"])
        path = tmp_path / "durations.jsonl"
        run_scheduled(load_model("GPT-3.5"), bench, num_samples=2,
                      temperature=0.2, seed=7, jobs=2, ledger_path=path)
        assert path.exists()
        first = path.stat().st_size
        assert first > 0
        run_scheduled(load_model("GPT-3.5"), bench, num_samples=2,
                      temperature=0.2, seed=7, jobs=2, ledger_path=path)
        assert path.stat().st_size > first       # merged, not truncated


class TestValidation:
    def test_unknown_policy_rejected_before_any_work(self):
        bench = Registry(problem_types=["transform"], models=["serial"])
        with pytest.raises(ConfigurationError):
            evaluate_model(load_model("GPT-3.5"), bench, num_samples=2,
                           seed=7, jobs=2, dispatch="sjf")

    def test_dispatch_flag_routes_single_job_through_scheduler(self):
        # dispatch != default forces the scheduled path even at jobs=1,
        # and the result still matches the serial loop
        bench = Registry(problem_types=["transform"], models=["serial"])
        llm = load_model("GPT-3.5")
        kwargs = dict(num_samples=2, temperature=0.2, seed=7)
        reference = evaluate_model(llm, bench, **kwargs)
        run = evaluate_model(llm, bench, dispatch="fifo", **kwargs)
        assert run.to_json() == reference.to_json()
