"""Tests for the JSONL journal and the content-addressed sample cache."""

import json

import pytest

from repro.faults import FaultInjected, FaultPlan, FaultRule, injector
from repro.sched import Journal, SampleCache, journal_path_for


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct", "times": {"1": 0.5}})
        journal.append("t2", {"baseline": 1.25})
        journal.close()
        loaded = Journal(tmp_path / "run.jsonl").load("key1")
        assert loaded == {"t1": {"status": "correct", "times": {"1": 0.5}},
                          "t2": {"baseline": 1.25}}

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load("key") == {}

    def test_wrong_run_key_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct"})
        journal.close()
        assert Journal(tmp_path / "run.jsonl").load("other-key") == {}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct"})
        journal.close()
        with path.open("a") as fh:
            fh.write('{"task": "t2", "resu')       # killed mid-write
        loaded = Journal(path).load("key1")
        assert list(loaded) == ["t1"]

    def test_restart_with_same_key_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.close()
        journal = Journal(path)
        journal.start("key1")                      # resume: append mode
        journal.append("t2", {"b": 2})
        journal.close()
        assert set(Journal(path).load("key1")) == {"t1", "t2"}

    def test_start_fresh_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.close()
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.close()
        assert Journal(path).load("key1") == {}

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.discard()
        assert not path.exists()

    def test_journal_path_for_slash_safe(self, tmp_path):
        path = journal_path_for(tmp_path, "Phind/V2", 8, 0.2, True, 3)
        assert "/" not in path.name
        assert path.name.endswith(".journal.jsonl")


class TestGroupCommit:
    """Appends are buffered; one fsync covers the whole batch."""

    def test_records_reach_disk_only_on_commit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.append("t2", {"b": 2})
        # buffered: a reader (or a crash) sees only the committed header
        assert Journal(path).load("key1") == {}
        journal.commit()
        assert set(Journal(path).load("key1")) == {"t1", "t2"}
        journal.close()

    def test_one_fsync_per_batch_not_per_record(self, tmp_path,
                                                monkeypatch):
        import os as os_mod

        fsyncs = []
        real_fsync = os_mod.fsync
        monkeypatch.setattr(os_mod, "fsync",
                            lambda fd: (fsyncs.append(fd), real_fsync(fd)))
        journal = Journal(tmp_path / "run.jsonl")
        journal.start("key1", fresh=True)        # header commit: 1 fsync
        for i in range(10):
            journal.append(f"t{i}", {"i": i})
        journal.commit()                         # the whole burst: 1 more
        assert journal.commits == 2
        assert len(fsyncs) == 2
        journal.commit()                         # empty buffer: no-op
        assert journal.commits == 2
        journal.close()

    def test_auto_commit_bounds_the_buffer(self, tmp_path):
        from repro.sched.journal import GROUP_COMMIT_BOUND

        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        for i in range(GROUP_COMMIT_BOUND):
            journal.append(f"t{i}", {"i": i})
        # the bound forced a commit without anyone calling commit()
        assert len(Journal(path).load("key1")) == GROUP_COMMIT_BOUND
        journal.close()

    def test_close_commits_the_remainder(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.close()
        assert list(Journal(path).load("key1")) == ["t1"]


def _reference_journal(tmp_path):
    """Header + two records; returns (path, raw bytes, record task ids)."""
    path = tmp_path / "ref.jsonl"
    journal = Journal(path)
    journal.start("key1", fresh=True)
    journal.append("t1", {"status": "correct"})
    journal.append("t2", {"status": "wrong_answer", "times": {"2": 0.5}})
    journal.close()
    return path, path.read_bytes(), ["t1", "t2"]


class TestKillAtEveryByteOffset:
    """Satellite: simulate a writer killed at *every* byte offset of the
    journal; recovery must yield exactly the newline-committed prefix."""

    def test_load_recovers_exactly_the_committed_prefix(self, tmp_path):
        _, data, tasks = _reference_journal(tmp_path)
        for cut in range(len(data) + 1):
            torn = tmp_path / "torn.jsonl"
            torn.write_bytes(data[:cut])
            committed_lines = data[:cut].count(b"\n")
            # record i needs the header plus i+1 newline-terminated lines
            expected = [t for i, t in enumerate(tasks)
                        if committed_lines >= i + 2]
            loaded = Journal(torn).load("key1")
            assert list(loaded) == expected, f"kill at byte {cut}"

    def test_resume_truncates_the_torn_tail(self, tmp_path):
        _, data, _ = _reference_journal(tmp_path)
        # cut mid-way through the last record (after its first byte)
        cut = data.rfind(b'{"task": "t2"') + 5
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(data[:cut])
        journal = Journal(torn)
        journal.start("key1")                  # resume: append mode
        journal.append("t3", {"status": "correct"})
        journal.close()
        loaded = Journal(torn).load("key1")
        # t2's torn half is gone, not merged with t3's record
        assert list(loaded) == ["t1", "t3"]
        for line in torn.read_text().splitlines():
            json.loads(line)                   # every line is whole again


class TestTornWriteInjection:
    def test_injected_torn_write_is_uncommitted_and_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct"})
        rule = FaultRule(point="sched.journal.torn_write", action="torn",
                         match="t2", param=0.5)
        with injector(FaultPlan(rules=(rule,))):
            with pytest.raises(FaultInjected) as exc:
                journal.append("t2", {"status": "correct"})
        assert exc.value.transient is False
        journal.close()
        assert not path.read_bytes().endswith(b"\n")   # torn tail on disk
        assert list(Journal(path).load("key1")) == ["t1"]


class TestSampleCache:
    def test_get_put_round_trip(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "ab" + "0" * 62
        assert cache.get(tid) is None
        cache.put(tid, {"status": "correct", "times": {"4": 0.25}})
        assert cache.get(tid) == {"status": "correct", "times": {"4": 0.25}}
        assert tid in cache

    def test_sharded_layout(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "cd" + "1" * 62
        cache.put(tid, {"baseline": 1.0})
        assert (tmp_path / "cd" / f"{tid}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "ef" + "2" * 62
        cache.put(tid, {"ok": True})
        (tmp_path / "ef" / f"{tid}.json").write_text("{nope")
        assert cache.get(tid) is None

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "ab" + "3" * 62
        cache.put(tid, {"status": "correct", "detail": "fine"})
        path = tmp_path / "ab" / f"{tid}.json"
        text = path.read_text().replace("correct", "cOrrect")
        path.write_text(text)
        assert cache.get(tid) is None
        assert tid not in cache

    def test_legacy_unwrapped_entry_is_a_miss(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "cd" + "4" * 62
        path = tmp_path / "cd" / f"{tid}.json"
        path.parent.mkdir(parents=True)
        path.write_text('{"status": "correct"}')   # pre-checksum format
        assert cache.get(tid) is None

    def test_put_fsyncs_file_then_renames_then_fsyncs_dir(self, tmp_path,
                                                          monkeypatch):
        """Satellite: the durability protocol is tmp-write → fsync(file)
        → rename → fsync(parent dir), in that order.  Without the first
        fsync a crash can journal the rename before the data blocks hit
        disk; without the second the rename itself can be lost."""
        import os as os_mod
        import stat

        events = []
        real_fsync, real_replace = os_mod.fsync, os_mod.replace

        def spy_fsync(fd):
            mode = os_mod.fstat(fd).st_mode
            events.append(("fsync",
                           "dir" if stat.S_ISDIR(mode) else "file"))
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", None))
            real_replace(src, dst)

        monkeypatch.setattr(os_mod, "fsync", spy_fsync)
        monkeypatch.setattr(os_mod, "replace", spy_replace)
        cache = SampleCache(tmp_path)
        tid = "ab" + "8" * 62
        assert cache.put(tid, {"status": "correct"}) is True
        assert events == [("fsync", "file"), ("replace", None),
                          ("fsync", "dir")]
        assert cache.get(tid) == {"status": "correct"}

    def test_injected_enospc_degrades_to_a_miss(self, tmp_path):
        """guard.disk.enospc: the write fails cleanly — no entry, no
        leftover tmp file, and the cache keeps working once space is
        back."""
        plan = FaultPlan(rules=(
            FaultRule(point="guard.disk.enospc", action="enospc"),))
        cache = SampleCache(tmp_path)
        tid = "aa" + "9" * 62
        with injector(plan):
            assert cache.put(tid, {"status": "correct"}) is False
        assert cache.get(tid) is None
        assert not (tmp_path / "aa" / f"{tid}.json").exists()
        assert list(tmp_path.rglob("*.tmp")) == []
        # the disk recovered: the same entry now persists
        assert cache.put(tid, {"status": "correct"}) is True
        assert cache.get(tid) == {"status": "correct"}

    def test_enospc_never_corrupts_an_existing_entry(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "bb" + "0" * 62
        cache.put(tid, {"status": "correct", "times": {"1": 0.5}})
        plan = FaultPlan(rules=(
            FaultRule(point="guard.disk.enospc", action="enospc"),))
        with injector(plan):
            assert cache.put(tid, {"status": "wrong_answer"}) is False
        assert cache.get(tid) == {"status": "correct", "times": {"1": 0.5}}

    def test_injected_truncate_and_bitflip_become_misses(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(point="sched.cache.truncate", action="truncate",
                      match="aa"),
            FaultRule(point="sched.cache.bitflip", action="bitflip",
                      match="bb"),
        ))
        cache = SampleCache(tmp_path)
        truncated, flipped, clean = ("aa" + "5" * 62, "bb" + "6" * 62,
                                     "cc" + "7" * 62)
        with injector(plan):
            for tid in (truncated, flipped, clean):
                cache.put(tid, {"status": "correct"})
        assert cache.get(truncated) is None
        assert cache.get(flipped) is None
        assert cache.get(clean) == {"status": "correct"}
