"""Tests for the JSONL journal and the content-addressed sample cache."""

from repro.sched import Journal, SampleCache, journal_path_for


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct", "times": {"1": 0.5}})
        journal.append("t2", {"baseline": 1.25})
        journal.close()
        loaded = Journal(tmp_path / "run.jsonl").load("key1")
        assert loaded == {"t1": {"status": "correct", "times": {"1": 0.5}},
                          "t2": {"baseline": 1.25}}

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load("key") == {}

    def test_wrong_run_key_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct"})
        journal.close()
        assert Journal(tmp_path / "run.jsonl").load("other-key") == {}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"status": "correct"})
        journal.close()
        with path.open("a") as fh:
            fh.write('{"task": "t2", "resu')       # killed mid-write
        loaded = Journal(path).load("key1")
        assert list(loaded) == ["t1"]

    def test_restart_with_same_key_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.close()
        journal = Journal(path)
        journal.start("key1")                      # resume: append mode
        journal.append("t2", {"b": 2})
        journal.close()
        assert set(Journal(path).load("key1")) == {"t1", "t2"}

    def test_start_fresh_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.append("t1", {"a": 1})
        journal.close()
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.close()
        assert Journal(path).load("key1") == {}

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.start("key1", fresh=True)
        journal.discard()
        assert not path.exists()

    def test_journal_path_for_slash_safe(self, tmp_path):
        path = journal_path_for(tmp_path, "Phind/V2", 8, 0.2, True, 3)
        assert "/" not in path.name
        assert path.name.endswith(".journal.jsonl")


class TestSampleCache:
    def test_get_put_round_trip(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "ab" + "0" * 62
        assert cache.get(tid) is None
        cache.put(tid, {"status": "correct", "times": {"4": 0.25}})
        assert cache.get(tid) == {"status": "correct", "times": {"4": 0.25}}
        assert tid in cache

    def test_sharded_layout(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "cd" + "1" * 62
        cache.put(tid, {"baseline": 1.0})
        assert (tmp_path / "cd" / f"{tid}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SampleCache(tmp_path)
        tid = "ef" + "2" * 62
        cache.put(tid, {"ok": True})
        (tmp_path / "ef" / f"{tid}.json").write_text("{nope")
        assert cache.get(tid) is None
