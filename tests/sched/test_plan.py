"""Tests for the job-graph planner: stable ids, dedup, ordered assembly."""

import pytest

from repro.bench import PCGBench
from repro.harness import Runner
from repro.models import load_model
from repro.sched import (
    KIND_BASELINE,
    KIND_SAMPLE,
    assemble,
    baseline_task_id,
    bench_spec,
    build_plan,
    runner_fingerprint,
    sample_task_id,
)


@pytest.fixture(scope="module")
def bench():
    return PCGBench(problem_types=["transform"], models=["serial", "openmp"])


@pytest.fixture(scope="module")
def runner():
    return Runner()


@pytest.fixture(scope="module")
def plan(bench, runner):
    return build_plan(load_model("GPT-3.5"), bench, num_samples=4,
                      temperature=0.2, with_timing=True, runner=runner,
                      seed=7)


class TestTaskIds:
    def test_sample_id_is_stable(self):
        a = sample_task_id("src", "uid", "fp", True)
        b = sample_task_id("src", "uid", "fp", True)
        assert a == b and len(a) == 64

    def test_sample_id_varies_with_every_component(self):
        base = sample_task_id("src", "uid", "fp", True)
        assert sample_task_id("src2", "uid", "fp", True) != base
        assert sample_task_id("src", "uid2", "fp", True) != base
        assert sample_task_id("src", "uid", "fp2", True) != base
        assert sample_task_id("src", "uid", "fp", False) != base

    def test_baseline_id_distinct_from_sample_id(self):
        assert baseline_task_id("p", "fp") != sample_task_id("p", "p", "fp",
                                                             False)

    def test_fingerprint_tracks_runner_config(self, runner):
        assert runner_fingerprint(runner) == runner_fingerprint(Runner())
        assert runner_fingerprint(Runner(seed=1)) != runner_fingerprint(runner)
        assert (runner_fingerprint(Runner(thread_counts=(1, 2)))
                != runner_fingerprint(runner))


class TestBuildPlan:
    def test_slot_coverage(self, plan, bench):
        assert len(plan.prompts) == len(bench.prompts)
        assert plan.num_slots == len(bench.prompts) * 4

    def test_slots_reference_existing_tasks(self, plan):
        for pp in plan.prompts:
            for slot in pp.slots:
                assert slot.task_id in plan.tasks
                assert plan.tasks[slot.task_id].kind == KIND_SAMPLE
            assert plan.tasks[pp.baseline_task].kind == KIND_BASELINE

    def test_identical_sources_deduplicate(self, plan):
        sample_tasks = [t for t in plan.tasks.values()
                        if t.kind == KIND_SAMPLE]
        # a confident model at t=0.2 repeats candidates: far fewer unique
        # tasks than slots
        assert len(sample_tasks) < plan.num_slots

    def test_one_baseline_per_problem(self, plan, bench):
        baselines = [t for t in plan.tasks.values()
                     if t.kind == KIND_BASELINE]
        assert len(baselines) == len(bench.problems)

    def test_plan_is_deterministic(self, bench, runner):
        llm = load_model("GPT-3.5")
        again = build_plan(llm, bench, num_samples=4, temperature=0.2,
                           with_timing=True, runner=runner, seed=7)
        fresh = build_plan(llm, bench, num_samples=4, temperature=0.2,
                           with_timing=True, runner=runner, seed=7)
        assert list(again.tasks) == list(fresh.tasks)
        assert again.run_key() == fresh.run_key()

    def test_run_key_varies_with_config(self, plan, bench, runner):
        other = build_plan(load_model("GPT-3.5"), bench, num_samples=4,
                           temperature=0.2, with_timing=True, runner=runner,
                           seed=8)
        assert other.run_key() != plan.run_key()

    def test_bench_spec_round_trip(self, bench):
        ptypes, models = bench_spec(bench)
        rebuilt = PCGBench(problem_types=list(ptypes), models=list(models))
        assert [p.uid for p in rebuilt.prompts] == \
            [p.uid for p in bench.prompts]


class TestAssemble:
    def test_assemble_orders_by_plan_not_arrival(self, plan):
        results = {}
        for tid, spec in reversed(list(plan.tasks.items())):
            if spec.kind == KIND_BASELINE:
                results[tid] = {"baseline": 1.0}
            else:
                # journal round trip stringifies times keys
                results[tid] = {"status": "correct", "detail": "",
                                "times": {"1": 0.5}}
        run = assemble(plan, results)
        assert list(run.prompts) == [pp.uid for pp in plan.prompts]
        record = next(iter(run.prompts.values()))
        assert record.baseline == 1.0
        assert record.samples[0].times == {1: 0.5}

    def test_assemble_truncates_detail(self, plan):
        results = {}
        for tid, spec in plan.tasks.items():
            if spec.kind == KIND_BASELINE:
                results[tid] = {"baseline": 1.0}
            else:
                results[tid] = {"status": "build_error", "detail": "x" * 500,
                                "times": {}}
        run = assemble(plan, results)
        record = next(iter(run.prompts.values()))
        assert len(record.samples[0].detail) == 160
