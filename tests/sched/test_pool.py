"""Fault-isolation tests for the worker pool, using synthetic tasks that
succeed, raise, crash the worker process, or hang."""

import os
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan, FaultRule, injector
from repro.sched import SOURCE_FAILED, Telemetry, WorkerPool
from repro.sched.events import WorkerCrashed, WorkerReplaced


def _init(tag):
    return tag


def _work(ctx, payload):
    action = payload["action"]
    if action == "ok":
        return {"v": payload["v"] * 2}
    if action == "raise":
        raise RuntimeError("boom")
    if action == "crash_once":
        marker = Path(payload["marker"])
        if not marker.exists():
            marker.write_text("died here")
            os._exit(13)          # simulate a segfault / OOM kill
        return {"v": "recovered"}
    if action == "raise_once":
        marker = Path(payload["marker"])
        if not marker.exists():
            marker.write_text("raised here")
            raise RuntimeError("transient boom")
        return {"v": "recovered"}
    if action == "crash":
        os._exit(13)
    if action == "hang":
        time.sleep(120.0)
    raise ValueError(f"unknown action {action}")


def _ok_tasks(n):
    return [(f"ok{i}", {"kind": "sample", "action": "ok", "v": i})
            for i in range(n)]


class TestHappyPath:
    def test_all_tasks_complete(self):
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",))
        results, failures = pool.run(_ok_tasks(20))
        assert failures == {}
        assert results["ok7"] == {"v": 14}
        assert len(results) == 20

    def test_single_worker(self):
        pool = WorkerPool(jobs=1, work_fn=_work, init_fn=_init,
                          init_args=("t",))
        results, failures = pool.run(_ok_tasks(5))
        assert len(results) == 5 and not failures

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0, work_fn=_work)

    def test_empty_task_list(self):
        pool = WorkerPool(jobs=2, work_fn=_work)
        assert pool.run([]) == ({}, {})


class TestFaults:
    def test_raising_task_fails_without_killing_run(self):
        tel = Telemetry()
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=1, emit=tel)
        tasks = _ok_tasks(6) + [("bad", {"kind": "sample",
                                         "action": "raise"})]
        results, failures = pool.run(tasks)
        assert len(results) == 6
        assert "boom" in failures["bad"]
        assert tel.provenance["bad"] == SOURCE_FAILED

    def test_worker_crash_is_requeued_and_recovers(self, tmp_path):
        tel = Telemetry()
        tel.keep_events = True
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=2, emit=tel)
        marker = tmp_path / "crashed"
        tasks = _ok_tasks(6) + [
            ("lazarus", {"kind": "sample", "action": "crash_once",
                         "marker": str(marker)})]
        results, failures = pool.run(tasks)
        assert failures == {}
        assert results["lazarus"] == {"v": "recovered"}
        assert tel.crashes >= 1
        assert any(isinstance(e, WorkerCrashed) for e in tel.events)
        assert any(isinstance(e, WorkerReplaced) for e in tel.events)

    def test_always_crashing_task_exhausts_budget(self):
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=1)
        tasks = _ok_tasks(4) + [("doom", {"kind": "sample",
                                          "action": "crash"})]
        results, failures = pool.run(tasks)
        assert len(results) == 4
        assert "doom" in failures

    def test_hang_is_detected_and_contained(self):
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), task_timeout=1.0, max_retries=0)
        tasks = _ok_tasks(4) + [("stuck", {"kind": "sample",
                                           "action": "hang"})]
        began = time.monotonic()
        results, failures = pool.run(tasks)
        assert len(results) == 4
        assert "timeout" in failures["stuck"]
        # the hang cost ~task_timeout, not the full 120s sleep
        assert time.monotonic() - began < 30.0

    def test_deadline_kill_is_an_infra_timeout(self):
        """A wall-clock kill is infrastructure, distinct from a sample's
        own fuel-budget timeout: the crash event carries kind='timeout',
        telemetry counts it, and the detail says so."""
        tel = Telemetry()
        tel.keep_events = True
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), task_timeout=1.0, max_retries=0,
                          emit=tel)
        _, failures = pool.run([("stuck", {"kind": "sample",
                                           "action": "hang"})])
        assert "infrastructure" in failures["stuck"]
        assert tel.infra_timeouts == 1
        kinds = [e.kind for e in tel.events if isinstance(e, WorkerCrashed)]
        assert "timeout" in kinds

    def test_exhausted_task_reports_system_error_status(self):
        tel = Telemetry()
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=0, emit=tel)
        _, failures = pool.run([("bad", {"kind": "sample",
                                         "action": "raise"})])
        assert "bad" in failures
        # the infra lane, never a model-blaming status
        assert tel.statuses.get("system_error") == 1


class TestRetryOrdering:
    def test_retries_queue_strictly_behind_fresh_work(self, tmp_path):
        """Satellite: a retried task re-enqueues behind all still-pending
        fresh tasks, deterministically — a retry storm can never starve
        the queue tail.  With one worker and a queue bound of one, the
        completion order is fully determined: the flaky task (submitted
        first, failed once) completes *after* every fresh task."""
        order = []
        pool = WorkerPool(jobs=1, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=2, queue_bound=1)
        tasks = [("flaky", {"kind": "sample", "action": "raise_once",
                            "marker": str(tmp_path / "flaky.marker")}),
                 ("a", {"kind": "sample", "action": "ok", "v": 1}),
                 ("b", {"kind": "sample", "action": "ok", "v": 2})]
        results, failures = pool.run(
            tasks, on_result=lambda tid, res: order.append(tid))
        assert failures == {}
        assert results["flaky"] == {"v": "recovered"}
        assert order == ["a", "b", "flaky"]

    def test_ordering_is_reproducible(self, tmp_path):
        def drive(tag):
            order = []
            pool = WorkerPool(jobs=1, work_fn=_work, init_fn=_init,
                              init_args=("t",), max_retries=2,
                              queue_bound=1)
            marker = tmp_path / f"{tag}.marker"
            tasks = [("flaky", {"kind": "sample", "action": "raise_once",
                                "marker": str(marker)})] \
                + [(f"fresh{i}", {"kind": "sample", "action": "ok",
                                  "v": i}) for i in range(4)]
            pool.run(tasks, on_result=lambda tid, res: order.append(tid))
            return order

        assert drive("one") == drive("two") \
            == [f"fresh{i}" for i in range(4)] + ["flaky"]


class TestInjectedSchedFaults:
    def test_injected_worker_kill_recovers_by_retry(self):
        tel = Telemetry()
        tel.keep_events = True
        plan = FaultPlan(rules=(
            FaultRule(point="sched.worker.kill", action="kill",
                      match="victim#a0"),))
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=2, emit=tel)
        tasks = _ok_tasks(4) + [("victim", {"kind": "sample",
                                            "action": "ok", "v": 21})]
        with injector(plan):
            results, failures = pool.run(tasks)
        assert failures == {}
        assert results["victim"] == {"v": 42}
        assert any(isinstance(e, WorkerCrashed) for e in tel.events)

    def test_injected_result_corruption_is_retried(self):
        plan = FaultPlan(rules=(
            FaultRule(point="sched.result.corrupt", action="corrupt",
                      match="ok3"),))
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=2,
                          validate=lambda p, b: "__corrupted__" not in b)
        with injector(plan):
            results, failures = pool.run(_ok_tasks(6))
        assert failures == {}
        assert results["ok3"] == {"v": 6}

    def test_validation_failure_exhausts_retries(self):
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=1,
                          validate=lambda p, b: False)
        results, failures = pool.run(_ok_tasks(2))
        assert results == {}
        assert all("validation" in d for d in failures.values())
