"""End-to-end scheduler tests: the determinism and resumability
acceptance criteria, cross-run caching, and the EvalCache/CLI wiring."""

import json

import pytest

from repro.bench import PCGBench
from repro.faults import FaultPlan, FaultRule, injector
from repro.harness import ConfigurationError, EvalCache, evaluate_model
from repro.models import load_model
from repro.sched import (
    SOURCE_EXECUTED,
    SchedulerAbort,
    TaskFinished,
    Telemetry,
    run_scheduled,
)


@pytest.fixture(scope="module")
def bench():
    return PCGBench(problem_types=["transform"], models=["serial", "openmp"])


@pytest.fixture(scope="module")
def llm():
    return load_model("GPT-3.5")


@pytest.fixture(scope="module")
def serial_timed(llm, bench):
    return evaluate_model(llm, bench, num_samples=3, temperature=0.2,
                          with_timing=True, seed=7)


class TestDeterminism:
    def test_parallel_matches_serial(self, llm, bench, serial_timed):
        parallel = evaluate_model(llm, bench, num_samples=3, temperature=0.2,
                                  with_timing=True, seed=7, jobs=4)
        assert parallel.to_json() == serial_timed.to_json()

    def test_jobs_counts_agree(self, llm, bench):
        runs = [evaluate_model(llm, bench, num_samples=2, seed=3, jobs=j)
                for j in (1, 2, 3)]
        assert runs[0].to_json() == runs[1].to_json() == runs[2].to_json()

    def test_hot_temperature_matches(self, llm, bench):
        serial = evaluate_model(llm, bench, num_samples=4, temperature=0.8,
                                seed=13)
        parallel = evaluate_model(llm, bench, num_samples=4, temperature=0.8,
                                  seed=13, jobs=2)
        assert parallel.to_json() == serial.to_json()


class _AbortAfter:
    """Event sink that interrupts the run after K executed tasks."""

    def __init__(self, k):
        self.k = k
        self.seen = 0

    def __call__(self, event):
        if isinstance(event, TaskFinished) and \
                event.source == SOURCE_EXECUTED:
            self.seen += 1
            if self.seen >= self.k:
                raise SchedulerAbort(f"aborted after {self.k} tasks")


class TestResumability:
    K = 5

    def test_interrupt_then_resume_recomputes_nothing(self, llm, bench,
                                                      serial_timed,
                                                      tmp_path):
        journal = tmp_path / "run.journal.jsonl"
        with pytest.raises(SchedulerAbort):
            evaluate_model(llm, bench, num_samples=3, temperature=0.2,
                           with_timing=True, seed=7, jobs=2,
                           journal=str(journal), events=_AbortAfter(self.K))
        lines = [json.loads(l) for l in journal.read_text().splitlines()]
        journaled = {l["task"] for l in lines if l.get("kind") != "header"}
        # journal-then-notify: every task the sink saw is checkpointed
        assert len(journaled) >= self.K

        telemetry = Telemetry()
        resumed = evaluate_model(llm, bench, num_samples=3, temperature=0.2,
                                 with_timing=True, seed=7, jobs=2,
                                 journal=str(journal), resume=True,
                                 events=telemetry)
        # no finished task was recomputed ...
        assert journaled.isdisjoint(telemetry.executed_ids())
        assert telemetry.from_journal == len(journaled)
        assert telemetry.executed + telemetry.from_journal == \
            telemetry.total
        # ... and the result is still byte-identical to the serial run
        assert resumed.to_json() == serial_timed.to_json()

    def test_resume_of_finished_run_executes_nothing(self, llm, bench,
                                                     tmp_path):
        journal = tmp_path / "done.journal.jsonl"
        evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                       journal=str(journal))
        telemetry = Telemetry()
        evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                       journal=str(journal), resume=True, events=telemetry)
        assert telemetry.executed == 0
        assert telemetry.from_journal == telemetry.total > 0

    def test_stale_journal_from_other_config_is_ignored(self, llm, bench,
                                                        tmp_path):
        journal = tmp_path / "stale.journal.jsonl"
        evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                       journal=str(journal))
        telemetry = Telemetry()
        evaluate_model(llm, bench, num_samples=2, seed=4, jobs=2,
                       journal=str(journal), resume=True, events=telemetry)
        assert telemetry.from_journal == 0
        assert telemetry.executed == telemetry.total

    def test_resume_requires_journal(self, llm, bench):
        with pytest.raises(ConfigurationError):
            evaluate_model(llm, bench, num_samples=2, resume=True)


class TestSystemErrorResampling:
    def test_journaled_system_error_is_resampled_on_resume(self, llm, bench,
                                                           tmp_path):
        """An infra-failed record planted in the journal must be replayed
        as *missing* — the task re-executes and the run comes out clean."""
        journal = tmp_path / "run.jsonl"
        clean = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                               journal=str(journal))
        lines = journal.read_text().splitlines()
        victim = json.loads(lines[1])          # first task record
        lines[1] = json.dumps({"task": victim["task"], "result": {
            "status": "system_error", "detail": "scheduler: planted"}})
        journal.write_text("\n".join(lines) + "\n")
        telemetry = Telemetry()
        resumed = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                                 journal=str(journal), resume=True,
                                 events=telemetry)
        assert telemetry.executed == 1         # exactly the planted task
        assert resumed.to_json() == clean.to_json()

    def test_system_errors_are_never_journaled(self, llm, bench, tmp_path):
        """Samples of one prompt are forced into system_error by a
        persistent injected flake; their tasks must not be checkpointed,
        and a fault-free resume re-executes them to the clean result."""
        clean = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2)
        uid = sorted(clean.prompts)[0]
        journal = tmp_path / "run.jsonl"
        plan = FaultPlan(rules=(
            FaultRule(point="harness.flake", action="raise",
                      match=uid, occurrences=None),))
        with injector(plan):
            faulted = evaluate_model(llm, bench, num_samples=2, seed=3,
                                     jobs=2, journal=str(journal))
        statuses = set(faulted.prompts[uid].statuses())
        assert statuses == {"system_error"}
        journaled = {json.loads(l)["task"]
                     for l in journal.read_text().splitlines()[1:]}
        telemetry = Telemetry()
        resumed = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                                 journal=str(journal), resume=True,
                                 events=telemetry)
        assert telemetry.executed > 0
        assert telemetry.from_journal == len(journaled)
        assert resumed.to_json() == clean.to_json()


class TestSampleCache:
    def test_cross_run_dedup(self, llm, bench, tmp_path):
        first = Telemetry()
        run1 = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                              sample_cache=str(tmp_path / "samples"),
                              events=first)
        assert first.executed == first.total > 0
        second = Telemetry()
        run2 = evaluate_model(llm, bench, num_samples=2, seed=3, jobs=2,
                              sample_cache=str(tmp_path / "samples"),
                              events=second)
        assert second.executed == 0
        assert second.from_cache == second.total
        assert run2.to_json() == run1.to_json()


class TestTelemetry:
    def test_stage_and_status_accounting(self, llm, bench):
        telemetry = Telemetry()
        run, returned = run_scheduled(llm, bench, num_samples=2, seed=3,
                                      jobs=2, emit=telemetry)
        assert set(telemetry.stage_seconds) == {"plan", "execute",
                                                "assemble"}
        assert sum(telemetry.statuses.values()) == telemetry.total
        assert telemetry.wall_seconds > 0.0
        assert returned.counts == telemetry.counts
        assert len(run.prompts) == len(bench.prompts)


class TestEvalCacheIntegration:
    def test_scheduled_get_or_run_matches_serial(self, llm, bench, tmp_path):
        serial_cache = EvalCache(cache_dir=str(tmp_path / "a"))
        sched_cache = EvalCache(cache_dir=str(tmp_path / "b"))
        serial = serial_cache.get_or_run(llm, bench, num_samples=2,
                                         temperature=0.2, seed=5, tag="t")
        scheduled = sched_cache.get_or_run(llm, bench, num_samples=2,
                                           temperature=0.2, seed=5, tag="t",
                                           jobs=2)
        assert scheduled.to_json() == serial.to_json()
        # the journal is superseded by the cache file and removed
        assert not list((tmp_path / "b" / "journal").glob("*"))
        # the content-addressed sample store was populated
        assert list((tmp_path / "b" / "samples").rglob("*.json"))
        # second call is a pure cache hit
        again = sched_cache.get_or_run(llm, bench, num_samples=2,
                                       temperature=0.2, seed=5, tag="t",
                                       jobs=2)
        assert again.to_json() == scheduled.to_json()

    def test_invalid_jobs_rejected(self, llm, bench):
        with pytest.raises(ConfigurationError):
            evaluate_model(llm, bench, num_samples=2, jobs=0)
