"""Guard mechanisms inside the worker pool: poison-task quarantine and
deterministic straggler hedging, driven by synthetic tasks."""

import os
import time

from repro.faults import FaultPlan, FaultRule, injector
from repro.guard import GuardPolicy
from repro.sched import SOURCE_QUARANTINED, Telemetry, WorkerPool
from repro.sched.events import TaskFinished, TaskHedged


def _init(tag):
    return tag


def _work(ctx, payload):
    action = payload["action"]
    if action == "ok":
        return {"v": payload["v"] * 2}
    if action == "crash":
        os._exit(13)
    if action == "straggle":
        # the first copy parks; any later copy (the hedge) returns the
        # identical payload immediately — both arrivals are byte-equal
        marker = payload["marker"]
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            time.sleep(payload["sleep"])
        except FileExistsError:
            pass
        return {"v": "done"}
    raise ValueError(f"unknown action {action}")


def _ok_tasks(n):
    return [(f"ok{i}", {"kind": "sample", "action": "ok", "v": i})
            for i in range(n)]


def _quarantine(kind, detail):
    return {"status": "quarantined", "detail": f"guard: {detail}"}


#: every completed task re-arms a near-zero straggler cut immediately
EAGER = GuardPolicy(hedge_multiplier=0.0, hedge_min_completed=1,
                    hedge_min_seconds=0.05)


class TestQuarantine:
    def test_poison_task_is_quarantined_not_failed(self):
        tel = Telemetry()
        tel.keep_events = True
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=5,
                          quarantine=_quarantine, emit=tel)
        tasks = _ok_tasks(4) + [("doom", {"kind": "sample",
                                          "action": "crash"})]
        results, failures = pool.run(tasks)
        assert failures == {}
        assert results["doom"]["status"] == "quarantined"
        assert "poison task" in results["doom"]["detail"]
        assert "2 distinct workers" in results["doom"]["detail"]
        assert tel.quarantined == 1
        finished = [e for e in tel.events if isinstance(e, TaskFinished)
                    and e.task_id == "doom"]
        assert [e.source for e in finished] == [SOURCE_QUARANTINED]

    def test_quarantine_spends_exactly_threshold_workers(self):
        """The ledger pulls the task after ``poison_threshold`` distinct
        worker deaths — the retry budget never burns further workers."""
        tel = Telemetry()
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=10,
                          guard=GuardPolicy(poison_threshold=3),
                          quarantine=_quarantine, emit=tel)
        results, _ = pool.run([("doom", {"kind": "sample",
                                         "action": "crash"})])
        assert results["doom"]["status"] == "quarantined"
        assert tel.crashes == 3

    def test_quarantine_off_burns_the_retry_budget(self):
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=3,
                          guard=GuardPolicy(quarantine=False),
                          quarantine=_quarantine)
        results, failures = pool.run([("doom", {"kind": "sample",
                                                "action": "crash"})])
        assert results == {}
        assert "doom" in failures

    def test_no_factory_fails_fast_with_poison_detail(self):
        """Without a payload factory the task still short-circuits into
        the failure lane, carrying the poison fingerprint."""
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), max_retries=10)
        results, failures = pool.run([("doom", {"kind": "sample",
                                                "action": "crash"})])
        assert results == {}
        assert "poison task" in failures["doom"]


class TestHedging:
    def _straggler_tasks(self, tmp_path, sleep=2.0):
        return _ok_tasks(4) + [
            ("slow", {"kind": "sample", "action": "straggle",
                      "marker": str(tmp_path / "slow.marker"),
                      "sleep": sleep})]

    def test_straggler_is_hedged_and_duplicate_wins(self, tmp_path):
        tel = Telemetry()
        tel.keep_events = True
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), guard=EAGER, emit=tel)
        results, failures = pool.run(self._straggler_tasks(tmp_path))
        assert failures == {}
        assert results["slow"] == {"v": "done"}
        # the duplicate's instant return was accepted while the first
        # copy was still parked — a hedge launch and a hedge win
        assert tel.hedges >= 1
        assert tel.hedge_wins >= 1
        assert any(isinstance(e, TaskHedged) for e in tel.events)

    def test_hedge_win_marks_task_finished(self, tmp_path):
        tel = Telemetry()
        tel.keep_events = True
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), guard=EAGER, emit=tel)
        pool.run(self._straggler_tasks(tmp_path))
        done = [e for e in tel.events if isinstance(e, TaskFinished)
                and e.task_id == "slow"]
        assert len(done) == 1 and done[0].hedged

    def test_hedging_off_never_speculates(self, tmp_path):
        tel = Telemetry()
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",),
                          guard=GuardPolicy(hedge=False), emit=tel)
        results, failures = pool.run(self._straggler_tasks(tmp_path,
                                                           sleep=1.0))
        assert failures == {}
        assert results["slow"] == {"v": "done"}
        assert tel.hedges == 0 and tel.hedge_wins == 0

    def test_injected_first_arrival_loss_duplicate_delivers(self, tmp_path):
        """guard.hedge.lose discards the first arrival while its twin is
        in flight; the twin's payload must be interchangeable."""
        tel = Telemetry()
        plan = FaultPlan(rules=(
            FaultRule(point="guard.hedge.lose", action="lose"),))
        pool = WorkerPool(jobs=2, work_fn=_work, init_fn=_init,
                          init_args=("t",), guard=EAGER, emit=tel)
        with injector(plan):
            results, failures = pool.run(
                self._straggler_tasks(tmp_path, sleep=1.5))
        assert failures == {}
        assert results["slow"] == {"v": "done"}
        assert tel.hedges >= 1

    def test_at_most_one_duplicate_per_task(self, tmp_path):
        tel = Telemetry()
        pool = WorkerPool(jobs=4, work_fn=_work, init_fn=_init,
                          init_args=("t",), guard=EAGER, emit=tel)
        results, failures = pool.run(self._straggler_tasks(tmp_path,
                                                           sleep=2.0))
        assert failures == {}
        assert tel.hedges <= 1
