"""HealthLedger classification: transient deaths vs poison tasks."""

import dataclasses

from repro.guard import (
    DEFAULT_POLICY,
    GuardPolicy,
    HealthLedger,
    VERDICT_POISON,
    VERDICT_TRANSIENT,
)


class TestVerdicts:
    def test_first_death_is_transient(self):
        ledger = HealthLedger(poison_threshold=2)
        assert ledger.record_death("t", 0, "crash", "exit 13") \
            == VERDICT_TRANSIENT

    def test_second_distinct_worker_is_poison(self):
        ledger = HealthLedger(poison_threshold=2)
        ledger.record_death("t", 0, "crash", "exit 13")
        assert ledger.record_death("t", 1, "crash", "exit 13") \
            == VERDICT_POISON

    def test_same_worker_twice_stays_transient(self):
        """Distinct workers, not raw death count: the same worker dying
        twice on one task may be that worker's problem."""
        ledger = HealthLedger(poison_threshold=2)
        ledger.record_death("t", 0, "crash", "exit 13")
        assert ledger.record_death("t", 0, "crash", "exit 13") \
            == VERDICT_TRANSIENT

    def test_deaths_do_not_leak_across_tasks(self):
        ledger = HealthLedger(poison_threshold=2)
        ledger.record_death("a", 0, "crash", "x")
        assert ledger.record_death("b", 1, "crash", "x") \
            == VERDICT_TRANSIENT

    def test_threshold_one_quarantines_immediately(self):
        ledger = HealthLedger(poison_threshold=1)
        assert ledger.record_death("t", 0, "timeout", "hang") \
            == VERDICT_POISON

    def test_threshold_floor_is_one(self):
        assert HealthLedger(poison_threshold=0).poison_threshold == 1


class TestRegister:
    def test_quarantine_register(self):
        ledger = HealthLedger()
        assert not ledger.is_quarantined("t")
        ledger.quarantine("t", "why")
        assert ledger.is_quarantined("t")
        assert ledger.quarantined == {"t": "why"}

    def test_deaths_are_readable(self):
        ledger = HealthLedger()
        ledger.record_death("t", 3, "timeout", "deadline")
        assert ledger.deaths("t") == [(3, "timeout", "deadline")]
        assert ledger.distinct_workers("t") == {3}


class TestFingerprint:
    def test_fingerprint_excludes_worker_ids(self):
        """Two runs may dispatch the task to differently-numbered
        workers; the journaled quarantine detail must not vary with it."""
        a, b = HealthLedger(), HealthLedger()
        a.record_death("t", 0, "crash", "exit 13")
        a.record_death("t", 1, "crash", "exit 13")
        b.record_death("t", 5, "crash", "exit 13")
        b.record_death("t", 9, "crash", "exit 13")
        assert a.fingerprint("t") == b.fingerprint("t")
        assert "poison task" in a.fingerprint("t")
        assert "2 distinct workers" in a.fingerprint("t")

    def test_fingerprint_sorts_kinds(self):
        a, b = HealthLedger(), HealthLedger()
        a.record_death("t", 0, "crash", "x")
        a.record_death("t", 1, "timeout", "y")
        b.record_death("t", 0, "timeout", "y")
        b.record_death("t", 1, "crash", "x")
        assert a.fingerprint("t") == b.fingerprint("t")
        assert "crash,timeout" in a.fingerprint("t")


class TestPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.quarantine is True
        assert DEFAULT_POLICY.poison_threshold == 2
        assert DEFAULT_POLICY.hedge is True
        assert DEFAULT_POLICY.max_hedges_per_task == 1

    def test_policy_is_frozen(self):
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            GuardPolicy().hedge = False
