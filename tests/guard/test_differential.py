"""Golden differential suite: supervision must be invisible.

Every problem in the benchmark, under all seven execution models, is
evaluated hedged (an aggressive policy that re-arms the straggler cut at
zero seconds after the first completed task) and unhedged; the resulting
:class:`EvalRun` JSON, digests, and CSV exports must be byte-identical.
Hedging is throughput policy, never content policy: every speculative
copy computes identical judged content, and per-copy fields (durations,
worker ids) never reach the serialised run.

Non-vacuity — that hedges actually launch and win — is proven with
synthetic stragglers in ``test_pool_guard.py``; real harness tasks
finish too fast to straggle deterministically, so here the aggressive
policy serves as maximum pressure rather than a guaranteed trigger.
"""

import pytest

from repro import Runner, evaluate_model, load_model
from repro.analysis import to_csv
from repro.bench import all_problems
from repro.bench.registry import PCGBench as Registry
from repro.faults import FaultPlan, FaultRule, injector
from repro.guard import GuardPolicy

ALL_MODELS = ["serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"]

#: every completed task immediately re-arms a zero-second straggler cut
EAGER = GuardPolicy(hedge_multiplier=0.0, hedge_min_completed=1,
                    hedge_min_seconds=0.0)


@pytest.fixture(scope="module")
def full_bench():
    return Registry(models=ALL_MODELS)


class TestFullDifferential:
    """The acceptance gate: hedged EvalRuns are byte-identical."""

    def test_every_problem_every_model_hedged_identical(self, full_bench):
        assert {p.name for p in full_bench.problems} \
            == {p.name for p in all_problems()}
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9)
        clean = evaluate_model(llm, full_bench, runner=Runner(), **kwargs)
        hedged = evaluate_model(llm, full_bench, runner=Runner(), jobs=2,
                                guard=EAGER, **kwargs)
        assert hedged.to_json() == clean.to_json()
        assert hedged.digest() == clean.digest()
        assert to_csv(hedged) == to_csv(clean)

    def test_timed_profiled_slice_hedged_identical(self):
        # timing + profiling exercise the windowed executors; measured
        # durations are judged content (deterministic cost model), while
        # per-copy wall clock stays out of the run — so the guarantee
        # must hold with timing on, too
        bench = Registry(problem_types=["reduce", "transform"],
                         models=ALL_MODELS)
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9,
                      with_timing=True, profile=True)
        clean = evaluate_model(llm, bench, runner=Runner(), **kwargs)
        hedged = evaluate_model(llm, bench, runner=Runner(), jobs=2,
                                guard=EAGER, **kwargs)
        assert hedged.to_json() == clean.to_json()


class TestAdversarialArbitration:
    def test_injected_first_arrival_losses_stay_identical(self):
        """guard.hedge.lose forces the *duplicate* to win whenever a
        race exists; first-writer-wins arbitration must be content-blind
        either way."""
        bench = Registry(problem_types=["transform"],
                         models=["serial", "openmp"])
        llm = load_model("GPT-3.5")
        kwargs = dict(num_samples=2, temperature=0.2, seed=7)
        clean = evaluate_model(llm, bench, runner=Runner(), **kwargs)
        lose_plan = FaultPlan(rules=(
            FaultRule(point="guard.hedge.lose", action="lose",
                      occurrences=None),), seed=0)
        with injector(lose_plan):
            hedged = evaluate_model(llm, bench, runner=Runner(), jobs=2,
                                    guard=EAGER, **kwargs)
        assert hedged.to_json() == clean.to_json()

    def test_hedging_off_is_also_identical(self):
        """The ``--no-hedge`` escape hatch changes throughput only."""
        bench = Registry(problem_types=["transform"],
                         models=["serial", "openmp"])
        llm = load_model("GPT-3.5")
        kwargs = dict(num_samples=2, temperature=0.2, seed=7)
        clean = evaluate_model(llm, bench, runner=Runner(), **kwargs)
        off = evaluate_model(llm, bench, runner=Runner(), jobs=2,
                             guard=GuardPolicy(hedge=False), **kwargs)
        assert off.to_json() == clean.to_json()
