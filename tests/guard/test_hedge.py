"""HedgeBook: quantile math and straggler-cut gating."""

import pytest

from repro.guard import GuardPolicy, HedgeBook, duration_quantile


class TestQuantile:
    def test_nearest_rank(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert duration_quantile(xs, 0.5) == 2.0
        assert duration_quantile(xs, 0.95) == 4.0
        assert duration_quantile(xs, 1.0) == 4.0

    def test_single_element(self):
        assert duration_quantile([7.0], 0.95) == 7.0

    def test_unsorted_input(self):
        assert duration_quantile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            duration_quantile([], 0.5)


class TestThreshold:
    def test_none_until_min_completed(self):
        book = HedgeBook(GuardPolicy(hedge_min_completed=3))
        book.observe(1.0)
        book.observe(1.0)
        assert book.threshold() is None
        book.observe(1.0)
        assert book.threshold() is not None

    def test_quantile_times_multiplier(self):
        book = HedgeBook(GuardPolicy(hedge_quantile=1.0,
                                     hedge_multiplier=3.0,
                                     hedge_min_completed=1,
                                     hedge_min_seconds=0.0))
        book.observe(2.0)
        assert book.threshold() == pytest.approx(6.0)

    def test_floor_applies(self):
        book = HedgeBook(GuardPolicy(hedge_multiplier=0.0,
                                     hedge_min_completed=1,
                                     hedge_min_seconds=0.25))
        book.observe(0.001)
        assert book.threshold() == 0.25

    def test_hedge_off_means_none(self):
        book = HedgeBook(GuardPolicy(hedge=False, hedge_min_completed=1))
        book.observe(1.0)
        assert book.threshold() is None


class TestWarmStart:
    """Ledger-seeded durations arm the cut before any in-run completion."""

    def test_seed_counts_toward_min_completed(self):
        book = HedgeBook(GuardPolicy(hedge_min_completed=3),
                         seed=(1.0, 1.0, 1.0))
        assert book.threshold() is not None      # armed from task zero

    def test_seed_value_feeds_the_quantile(self):
        book = HedgeBook(GuardPolicy(hedge_quantile=1.0,
                                     hedge_multiplier=3.0,
                                     hedge_min_completed=1,
                                     hedge_min_seconds=0.0),
                         seed=(2.0,))
        assert book.threshold() == pytest.approx(6.0)

    def test_cold_ledger_empty_seed_regresses_to_in_run_gating(self):
        # the cold-ledger fallback: an empty seed must behave exactly
        # like the pre-ledger book — None until enough in-run completions
        book = HedgeBook(GuardPolicy(hedge_min_completed=3), seed=())
        assert book.threshold() is None
        book.observe(1.0)
        book.observe(1.0)
        assert book.threshold() is None
        book.observe(1.0)
        assert book.threshold() is not None

    def test_in_run_observations_append_to_the_seed(self):
        book = HedgeBook(GuardPolicy(hedge_quantile=1.0,
                                     hedge_multiplier=1.0,
                                     hedge_min_completed=1,
                                     hedge_min_seconds=0.0),
                         seed=(1.0,))
        book.observe(5.0)
        assert book.threshold() == pytest.approx(5.0)   # max of both


class TestBookkeeping:
    def test_per_task_hedge_cap(self):
        book = HedgeBook(GuardPolicy(max_hedges_per_task=1))
        assert book.may_hedge("t")
        book.note_hedge("t")
        assert not book.may_hedge("t")
        assert book.may_hedge("other")
        assert book.launched == 1

    def test_higher_cap(self):
        book = HedgeBook(GuardPolicy(max_hedges_per_task=2))
        book.note_hedge("t")
        assert book.may_hedge("t")
        book.note_hedge("t")
        assert not book.may_hedge("t")
        assert book.launched == 2
