"""Circuit breakers: the state machine and the board's ring routing."""

import pytest

from repro.guard import (
    BreakerBoard,
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == STATE_CLOSED and b.allow()

    def test_trips_at_threshold(self):
        b = CircuitBreaker(failure_threshold=2, cooldown=2)
        b.record(False)
        assert b.state == STATE_CLOSED
        b.record(False)
        assert b.state == STATE_OPEN and not b.allow()
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record(False)
        b.record(True)
        b.record(False)
        assert b.state == STATE_CLOSED

    def test_cooldown_is_count_based(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=2)
        b.record(False)
        assert b.state == STATE_OPEN
        b.tick()
        assert b.state == STATE_OPEN          # one batch left
        b.tick()
        assert b.state == STATE_HALF_OPEN and b.allow()

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=1)
        b.record(False)
        b.tick()
        assert b.state == STATE_HALF_OPEN
        b.record(True)
        assert b.state == STATE_CLOSED

    def test_half_open_probe_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=1)
        b.record(False)
        b.tick()
        b.record(False)                        # one failure re-trips
        assert b.state == STATE_OPEN
        assert b.trips == 2

    def test_transitions_are_deterministic(self):
        def drive():
            b = CircuitBreaker(failure_threshold=2, cooldown=1)
            for ok in (False, False, True, False, False):
                b.record(ok)
                b.tick()
            return b.transitions

        assert drive() == drive()

    def test_to_dict_shape(self):
        d = CircuitBreaker().to_dict()
        assert set(d) == {"state", "consecutive_failures", "cooldown_left",
                          "trips"}


class TestBoard:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            BreakerBoard(0)

    def test_routes_home_while_closed(self):
        board = BreakerBoard(3)
        assert [board.route(i) for i in range(3)] == [0, 1, 2]
        assert board.reroutes == []

    def test_open_shard_routes_to_next_survivor(self):
        board = BreakerBoard(3, failure_threshold=1)
        board.record(1, False)
        assert board.route(1) == 2
        assert board.route(0) == 0
        assert board.reroutes == [(1, 2)]

    def test_ring_wraps(self):
        board = BreakerBoard(3, failure_threshold=1)
        board.record(2, False)
        assert board.route(2) == 0

    def test_fail_open_when_all_tripped(self):
        board = BreakerBoard(2, failure_threshold=1)
        board.record(0, False)
        board.record(1, False)
        assert board.route(0) == 0 and board.route(1) == 1
        assert board.open_count() == 2

    def test_tick_advances_every_breaker(self):
        board = BreakerBoard(2, failure_threshold=1, cooldown=1)
        board.record(0, False)
        board.tick()
        assert board.breakers[0].state == STATE_HALF_OPEN
        assert board.allow(0)

    def test_states_snapshot(self):
        board = BreakerBoard(2, failure_threshold=1)
        board.record(1, False)
        states = board.states()
        assert states["0"]["state"] == STATE_CLOSED
        assert states["1"]["state"] == STATE_OPEN
