"""Crash-only recovery: SIGKILL the whole scheduler process at every
event boundary and prove each resumed run is byte-identical.

This is the whole-process extension of the kill-at-every-journal-index
chaos invariant: not a truncated file, an actual ``SIGKILL`` delivered
to the running scheduler (no atexit, no flushes), with orphaned pool
workers left to notice the reparenting on their own.
"""

import pytest

from repro.bench import PCGBench
from repro.guard import crash_resume_sweep, run_supervised
from repro.models import load_model

#: the smallest slice that still exercises the pool: one problem type,
#: one execution model, two samples
KW = dict(num_samples=2, temperature=0.2, seed=7, jobs=2)


@pytest.fixture(scope="module")
def slice_():
    return load_model("GPT-3.5"), PCGBench(problem_types=["transform"],
                                           models=["serial"])


class TestRunSupervised:
    def test_unkilled_run_completes_without_restarts(self, slice_,
                                                     tmp_path):
        llm, bench = slice_
        result = run_supervised(llm, bench, workdir=tmp_path, **KW)
        assert result.restarts == 0
        assert result.events > 0
        assert len(result.digest) == 64

    def test_armed_kill_fires_and_recovers(self, slice_, tmp_path):
        llm, bench = slice_
        clean = run_supervised(llm, bench, workdir=tmp_path / "clean", **KW)
        killed = run_supervised(llm, bench, workdir=tmp_path / "killed",
                                kill_at=clean.events // 2, **KW)
        assert killed.restarts >= 1       # the SIGKILL actually landed
        assert killed.digest == clean.digest
        assert killed.json == clean.json

    def test_kill_past_the_end_never_fires(self, slice_, tmp_path):
        llm, bench = slice_
        clean = run_supervised(llm, bench, workdir=tmp_path / "c", **KW)
        result = run_supervised(llm, bench, workdir=tmp_path / "k",
                                kill_at=clean.events + 1000, **KW)
        assert result.restarts == 0
        assert result.digest == clean.digest


class TestEveryBoundary:
    def test_sweep_every_event_boundary_is_byte_identical(self, slice_,
                                                          tmp_path):
        """SIGKILL at *every* event boundary of the reference run; every
        resumed digest must match, and every armed kill must fire."""
        llm, bench = slice_
        sweep = crash_resume_sweep(llm, bench, workdir=tmp_path, **KW)
        assert sweep["checked"] == sweep["reference_events"] > 0
        assert sweep["mismatches"] == []
        # each armed boundary is before the run's end, so each kill
        # landed and forced at least one restart
        assert sweep["restarts"] >= sweep["checked"]
