"""Tests for the PCGBench registry, prompts, problems and baselines."""

import numpy as np
import pytest

from repro.bench import (
    EXECUTION_MODELS,
    PROBLEM_TYPES,
    PCGBench,
    all_problems,
    baseline_source,
    full_benchmark,
    problems_by_type,
    render_prompt,
)
from repro.lang import compile_source
from repro.runtime import DEFAULT_MACHINE, ExecCtx, SerialRuntime, compile_program


class TestRegistry:
    def test_420_prompts(self):
        bench = full_benchmark()
        assert len(bench) == 420  # 12 types x 5 problems x 7 models

    def test_inventory(self):
        bench = full_benchmark()
        inv = bench.inventory()
        assert set(inv) == set(PROBLEM_TYPES)
        assert all(v == 5 for v in inv.values())

    def test_five_problems_per_type(self):
        by_type = problems_by_type()
        assert set(by_type) == set(PROBLEM_TYPES)
        for probs in by_type.values():
            assert len(probs) == 5

    def test_unique_problem_names(self):
        names = [p.name for p in all_problems()]
        assert len(names) == len(set(names)) == 60

    def test_filtered_view(self):
        bench = PCGBench(problem_types=["sort"], models=["serial", "mpi"])
        assert len(bench) == 10
        assert {p.model for p in bench.prompts} == {"serial", "mpi"}

    def test_invalid_filters(self):
        with pytest.raises(ValueError):
            PCGBench(problem_types=["bogus"])
        with pytest.raises(ValueError):
            PCGBench(models=["fortran"])

    def test_lookup(self):
        bench = full_benchmark()
        assert bench.problem("gemm").ptype == "dense_la"
        assert bench.prompt("scan/prefix_sum/openmp").model == "openmp"
        with pytest.raises(KeyError):
            bench.problem("nope")

    def test_by_model_and_type(self):
        bench = full_benchmark()
        assert len(bench.by_model("cuda")) == 60
        assert len(bench.by_type("fft")) == 35


class TestPrompts:
    def test_prompt_mentions_model(self):
        p = all_problems()[0]
        assert "OpenMP" in render_prompt(p, "openmp").text
        assert "MPI" in render_prompt(p, "mpi").text
        assert "CUDA" in render_prompt(p, "cuda").text

    def test_serial_prompt_has_no_instruction(self):
        p = all_problems()[0]
        text = render_prompt(p, "serial").text
        for word in ("OpenMP", "MPI", "CUDA", "Kokkos", "HIP"):
            assert word not in text

    def test_prompt_ends_with_open_signature(self):
        p = all_problems()[0]
        text = render_prompt(p, "serial").text
        assert text.rstrip().endswith("{")
        assert f"kernel {p.name}(" in text

    def test_gpu_prompt_adds_result_buffer_for_scalar_returns(self):
        prob = next(p for p in all_problems() if p.name == "sum_of_elements")
        cuda = render_prompt(prob, "cuda").text
        serial = render_prompt(prob, "serial").text
        assert "result: array<float>" in cuda
        assert "result" not in serial
        assert "-> float" not in cuda

    def test_examples_present(self):
        p = all_problems()[0]
        assert "Examples:" in render_prompt(p, "serial").text

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            render_prompt(all_problems()[0], "openacc")


class TestProblemSpecs:
    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    def test_generate_and_reference_agree(self, problem):
        rng = np.random.default_rng(7)
        inputs = problem.generate(rng, problem.correctness_size)
        assert set(p.name for p in problem.params) == set(inputs)
        expected = problem.reference(inputs)
        for p in problem.checked_params():
            assert p.name in expected
        if problem.ret is not None:
            assert "return" in expected

    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    def test_check_accepts_reference_outputs(self, problem):
        """The checker must accept the reference's own outputs."""
        from repro.runtime import Array

        rng = np.random.default_rng(11)
        inputs = problem.generate(rng, problem.correctness_size)
        expected = problem.reference(inputs)
        args = []
        for p in problem.params:
            if p.name in expected and p.role in ("out", "inout"):
                args.append(Array.from_numpy(
                    np.asarray(expected[p.name]),
                    "int" if p.type.endswith("<int>") else "float",
                ))
            else:
                v = inputs[p.name]
                if isinstance(v, np.ndarray):
                    args.append(Array.from_numpy(
                        v, "int" if p.type.endswith("<int>") else "float"))
                else:
                    args.append(v)
        ret = expected.get("return")
        if problem.ret == "int" and ret is not None:
            ret = int(ret)
        elif problem.ret == "float" and ret is not None:
            ret = float(ret)
        assert problem.check(inputs, args, ret)

    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    def test_check_rejects_perturbed_outputs(self, problem):
        from repro.runtime import Array

        rng = np.random.default_rng(13)
        inputs = problem.generate(rng, problem.correctness_size)
        expected = problem.reference(inputs)
        args = []
        for p in problem.params:
            src = expected[p.name] if (
                p.name in expected and p.role in ("out", "inout")
            ) else inputs[p.name]
            if isinstance(src, np.ndarray):
                arr = Array.from_numpy(
                    np.asarray(src),
                    "int" if p.type.endswith("<int>") else "float")
                args.append(arr)
            else:
                args.append(src)
        ret = expected.get("return")
        if problem.ret is not None:
            # break the return value
            bad_ret = (int(ret) + 7) if problem.ret == "int" else float(ret) + 1e3
            assert not problem.check(inputs, args, bad_ret)
        else:
            # break one checked array element
            target = problem.checked_params()[0].name
            idx = [p.name for p in problem.params].index(target)
            args[idx].data[0] += 5
            assert not problem.check(inputs, args, None)


class TestBaselines:
    def test_every_problem_has_a_baseline(self):
        for p in all_problems():
            assert baseline_source(p.name)

    @pytest.mark.parametrize("problem", all_problems(), ids=lambda p: p.name)
    def test_baseline_correct(self, problem):
        program = compile_program(compile_source(baseline_source(problem.name)))
        rng = np.random.default_rng(17)
        inputs = problem.generate(rng, problem.correctness_size)
        args = problem.to_minipar_args(inputs)
        ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
        ret = program.run_kernel(problem.entry, ctx, args)
        assert problem.check(inputs, args, ret)

    def test_fft_baseline_is_nloglogn_not_quadratic(self):
        """The DFT baseline must be the fast transform (cost grows ~n log n,
        not n^2) — that asymmetry drives the paper's fft speedup findings."""
        problem = next(p for p in all_problems() if p.name == "dft")
        program = compile_program(compile_source(baseline_source("dft")))
        costs = {}
        for size in (512, 2048):
            rng = np.random.default_rng(1)
            inputs = problem.generate(rng, size)
            ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
            program.run_kernel(problem.entry, ctx,
                               problem.to_minipar_args(inputs))
            costs[size] = ctx.cost
        n1 = len(problem.generate(np.random.default_rng(1), 512)["re"])
        n2 = len(problem.generate(np.random.default_rng(1), 2048)["re"])
        ratio = costs[2048] / costs[512]
        quadratic_ratio = (n2 / n1) ** 2
        assert ratio < quadratic_ratio / 1.8
