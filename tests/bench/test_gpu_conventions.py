"""Unit tests for the GPU result-buffer conventions on Problem."""

import numpy as np
import pytest

from repro.bench import all_problems
from repro.runtime import Array


def problem(name):
    return next(p for p in all_problems() if p.name == name)


class TestGpuParams:
    def test_scalar_return_gains_result_param(self):
        p = problem("sum_of_elements")
        names = [q.name for q in p.gpu_params()]
        assert names[-1] == "result"
        assert p.gpu_params()[-1].type == "array<float>"

    def test_int_return_gets_int_buffer(self):
        p = problem("count_above_threshold")
        assert p.gpu_params()[-1].type == "array<int>"

    def test_void_problems_unchanged(self):
        p = problem("relu")
        assert p.gpu_params() == p.params

    def test_signature_model_dependent(self):
        p = problem("sum_of_elements")
        assert "-> float" in p.signature("serial")
        assert "-> float" not in p.signature("cuda")
        assert "result" in p.signature("hip")


class TestGpuSeeds:
    def test_default_zero(self):
        p = problem("sum_of_elements")
        assert p.gpu_result_seed({}) == 0

    def test_min_reduction_seed(self):
        p = problem("smallest_element")
        assert p.gpu_result_seed({}) == 1e30

    def test_search_seed_is_length(self):
        p = problem("index_of_first")
        inputs = {"x": np.zeros(17), "v": 1.0}
        assert p.gpu_result_seed(inputs) == 17

    def test_search_expected_maps_not_found(self):
        p = problem("index_of_first")
        rng = np.random.default_rng(0)
        inputs = p.generate(rng, 64)
        want_host = p.reference(inputs)["return"]
        want_gpu = p.gpu_expected_result(inputs)
        if want_host == -1:
            assert want_gpu == len(inputs["x"])
        else:
            assert want_gpu == want_host


class TestGpuCheck:
    def test_accepts_reference_result(self):
        p = problem("sum_of_elements")
        rng = np.random.default_rng(1)
        inputs = p.generate(rng, 64)
        x = Array.from_numpy(inputs["x"])
        result = Array.from_list([p.gpu_expected_result(inputs)], "float")
        assert p.gpu_check(inputs, [x, result])

    def test_rejects_wrong_result(self):
        p = problem("sum_of_elements")
        rng = np.random.default_rng(1)
        inputs = p.generate(rng, 64)
        x = Array.from_numpy(inputs["x"])
        result = Array.from_list(
            [float(p.gpu_expected_result(inputs)) + 123.0], "float")
        assert not p.gpu_check(inputs, [x, result])

    def test_rejects_missing_buffer(self):
        p = problem("sum_of_elements")
        rng = np.random.default_rng(1)
        inputs = p.generate(rng, 64)
        x = Array.from_numpy(inputs["x"])
        assert not p.gpu_check(inputs, [x, 3.0])

    def test_void_problem_checks_arrays(self):
        p = problem("relu")
        rng = np.random.default_rng(1)
        inputs = p.generate(rng, 64)
        good = Array.from_numpy(np.asarray(p.reference(inputs)["x"]))
        assert p.gpu_check(inputs, [good])
        bad = good.copy()
        bad.data[0] -= 1.0
        assert not p.gpu_check(inputs, [bad])

    def test_int_result_checked_exactly(self):
        p = problem("count_above_threshold")
        rng = np.random.default_rng(1)
        inputs = p.generate(rng, 64)
        x = Array.from_numpy(inputs["x"])
        want = int(p.gpu_expected_result(inputs))
        ok = Array.from_list([want], "int")
        assert p.gpu_check(inputs, [x, inputs["t"], ok])
        off = Array.from_list([want + 1], "int")
        assert not p.gpu_check(inputs, [x, inputs["t"], off])
