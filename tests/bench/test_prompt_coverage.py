"""Coverage sweep: all 420 prompts render, and every baseline runs under
every compatible configuration (serial correctness already covered; here
we pin prompt-side invariants the simulated LLMs depend on)."""

import pytest

from repro.bench import EXECUTION_MODELS, full_benchmark
from repro.harness.usagecheck import uses_parallel_model

BENCH = full_benchmark()


def test_all_420_prompts_render_nonempty():
    assert len(BENCH.prompts) == 420
    for prompt in BENCH.prompts:
        assert prompt.text.startswith("/*")
        assert prompt.text.rstrip().endswith("{")
        assert f"kernel {prompt.problem.name}(" in prompt.text


def test_uids_unique_and_parseable():
    uids = [p.uid for p in BENCH.prompts]
    assert len(set(uids)) == 420
    for uid in uids:
        ptype, name, model = uid.split("/")
        assert model in EXECUTION_MODELS


def test_prompt_text_never_leaks_other_models():
    """A serial prompt must not mention any parallel model; an OpenMP
    prompt must not mention MPI; etc. — prompt-instruction hygiene."""
    mentions = {
        "openmp": "OpenMP", "kokkos": "Kokkos", "mpi": "MPI",
        "cuda": "CUDA", "hip": "HIP",
    }
    for prompt in BENCH.prompts:
        for model, word in mentions.items():
            if prompt.model == "mpi+omp" and model in ("mpi", "openmp"):
                continue
            if prompt.model == model:
                continue
            # graph/geometry descriptions never use these words, so any
            # occurrence is an instruction leak
            assert word not in prompt.text, (prompt.uid, word)


def test_gpu_prompts_gain_result_param_only_for_scalar_returns():
    for prompt in BENCH.prompts:
        has_result = "result:" in prompt.text
        if prompt.model in ("cuda", "hip"):
            assert has_result == (prompt.problem.ret is not None), prompt.uid
        else:
            assert not has_result, prompt.uid


def test_usage_patterns_do_not_misfire_on_prompts():
    """The usage check runs against generated code, which echoes the
    prompt's signature; the signature itself must never satisfy a
    parallel-usage pattern (else empty completions would 'use' the model)."""
    for prompt in BENCH.prompts:
        if prompt.model == "serial":
            continue
        signature_only = prompt.problem.signature(prompt.model) + "\n}"
        assert not uses_parallel_model(signature_only, prompt.model), prompt.uid
