"""Unit tests for the Diagnostic record and its helpers."""

from repro.lint import (
    ANALYZER_MPI,
    ANALYZER_RACE,
    ANALYZER_USAGE,
    DEFINITE,
    POSSIBLE,
    Diagnostic,
    blocking,
    definite,
    sort_key,
)


def _d(**kw):
    base = dict(analyzer=ANALYZER_RACE, kind="loop-invariant-write",
                certainty=DEFINITE, message="m")
    base.update(kw)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_severity_tracks_certainty(self):
        assert _d(certainty=DEFINITE).severity == "error"
        assert _d(certainty=POSSIBLE).severity == "warning"

    def test_round_trip(self):
        d = _d(line=4, col=7, kernel="relu")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_to_dict_key_order_is_stable(self):
        keys = list(_d().to_dict())
        assert keys == ["analyzer", "kind", "certainty", "severity",
                        "message", "line", "col", "kernel"]

    def test_render_mentions_location_and_kernel(self):
        text = _d(line=3, col=9, kernel="sum").render()
        assert "3:9" in text and "'sum'" in text and "race" in text

    def test_blocking_excludes_usage_and_possible(self):
        fatal = _d(analyzer=ANALYZER_RACE, certainty=DEFINITE)
        usage = _d(analyzer=ANALYZER_USAGE, certainty=DEFINITE,
                   kind="model-not-used")
        maybe = _d(analyzer=ANALYZER_MPI, certainty=POSSIBLE)
        assert fatal.blocking and not usage.blocking and not maybe.blocking
        assert blocking([usage, maybe, fatal]) == [fatal]
        assert definite([usage, maybe, fatal]) == [usage, fatal]

    def test_sort_key_orders_by_position(self):
        late = _d(line=9)
        early = _d(line=1)
        assert sorted([late, early], key=sort_key) == [early, late]
