"""Unit tests for the shared-memory race analyzer on hand-written kernels."""

from repro.lang import compile_source
from repro.lint import check_races


def diags(source, model):
    return check_races(compile_source(source), model)


def kinds(source, model):
    return {(d.kind, d.certainty) for d in diags(source, model)}


class TestOpenMP:
    def test_unprotected_scalar_accumulation_is_definite(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let total = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                total += x[i];
            }
            return total;
        }
        """
        assert ("shared-scalar-write", "definite") in kinds(src, "openmp")

    def test_reduction_clause_protects_scalar(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let total = 0.0;
            pragma omp parallel for reduction(+: total)
            for (i in 0..len(x)) {
                total += x[i];
            }
            return total;
        }
        """
        assert diags(src, "openmp") == []

    def test_critical_section_protects_scalar(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let total = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                pragma omp critical
                {
                    total += x[i];
                }
            }
            return total;
        }
        """
        assert diags(src, "openmp") == []

    def test_atomic_protects_array_cell(self):
        src = """
        kernel hist(x: array<int>, bins: array<int>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                pragma omp atomic
                bins[x[i]] += 1;
            }
        }
        """
        assert diags(src, "openmp") == []

    def test_data_dependent_index_without_atomic_is_possible(self):
        src = """
        kernel hist(x: array<int>, bins: array<int>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                bins[x[i]] += 1;
            }
        }
        """
        assert ("unprovable-write-index", "possible") in kinds(src, "openmp")

    def test_loop_invariant_write_is_definite(self):
        src = """
        kernel bad(x: array<float>, out: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                out[0] += x[i];
            }
        }
        """
        assert ("loop-invariant-write", "definite") in kinds(src, "openmp")

    def test_inplace_stencil_is_definite(self):
        src = """
        kernel blur(x: array<float>) {
            pragma omp parallel for
            for (i in 1..len(x) - 1) {
                x[i] = (x[i - 1] + x[i + 1]) / 2.0;
            }
        }
        """
        assert ("inplace-stencil", "definite") in kinds(src, "openmp")

    def test_out_of_place_stencil_is_clean(self):
        src = """
        kernel blur(x: array<float>, y: array<float>) {
            pragma omp parallel for
            for (i in 1..len(x) - 1) {
                y[i] = (x[i - 1] + x[i + 1]) / 2.0;
            }
        }
        """
        assert diags(src, "openmp") == []

    def test_guard_demotes_definite_to_possible(self):
        src = """
        kernel first(x: array<float>, out: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                if (x[i] > 0.0) {
                    out[0] = x[i];
                }
            }
        }
        """
        got = kinds(src, "openmp")
        assert ("loop-invariant-write", "possible") in got
        assert all(c != "definite" for _, c in got)

    def test_scaled_index_is_clean_with_const_on_either_side(self):
        # regression: a[i * 2] used to fold to coefficient 0 (invariant)
        # while a[2 * i] was classified correctly
        for index in ("i * 2", "2 * i"):
            src = f"""
            kernel scatter(x: array<float>, out: array<float>) {{
                pragma omp parallel for
                for (i in 0..len(x)) {{
                    out[{index}] = x[i];
                }}
            }}
            """
            assert diags(src, "openmp") == [], index

    def test_sibling_scope_let_bindings_do_not_collide(self):
        # regression: two `let t` in sibling branches shared one
        # let_inits slot, so one branch's uses resolved through the
        # other branch's initializer
        src = """
        kernel branches(a: array<float>, n: int) {
            pragma omp parallel for
            for (i in 0..len(a)) {
                if (n > 0) {
                    let t = 0;
                    a[t] = 1.0;
                } else {
                    let t = i;
                    a[t] = 2.0;
                }
            }
        }
        """
        got = kinds(src, "openmp")
        assert all(c != "definite" for _, c in got)
        assert got, "ambiguous sibling-scope writes must still be flagged"
        # mirrored binding order: the real invariant write must not be
        # silently resolved through the other branch's `let t = i`
        mirrored = src.replace("let t = 0", "let t = X") \
                      .replace("let t = i", "let t = 0") \
                      .replace("let t = X", "let t = i")
        assert kinds(mirrored, "openmp"), \
            "invariant write behind a colliding let escaped unflagged"

    def test_loop_invariant_condition_demotes_to_possible(self):
        # a write under `if (n > 3)` never executes when n <= 3, so it
        # cannot be a definite (provable-on-every-run) conviction
        src = """
        kernel cond(a: array<float>, x: array<float>, n: int) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                if (n > 3) {
                    a[0] = x[i];
                }
            }
        }
        """
        got = kinds(src, "openmp")
        assert ("loop-invariant-write", "possible") in got
        assert all(c != "definite" for _, c in got)

    def test_literal_true_condition_keeps_definite(self):
        src = """
        kernel cond(a: array<float>, x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                if (true) {
                    a[0] = x[i];
                }
            }
        }
        """
        assert ("loop-invariant-write", "definite") in kinds(src, "openmp")

    def test_disjoint_writes_are_clean(self):
        src = """
        kernel scale(x: array<float>, a: float) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                x[i] = a * x[i];
            }
        }
        """
        assert diags(src, "openmp") == []

    def test_private_scratch_array_is_clean(self):
        src = """
        kernel work(x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                let tmp = alloc_float(4);
                tmp[0] = x[i];
                x[i] = tmp[0] + 1.0;
            }
        }
        """
        assert diags(src, "openmp") == []

    def test_race_through_helper_kernel_is_flagged(self):
        src = """
        kernel bump(out: array<float>, v: float) {
            out[0] += v;
        }
        kernel sum(x: array<float>, out: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                bump(out, x[i]);
            }
        }
        """
        assert any(d.certainty == "definite" for d in diags(src, "openmp"))

    def test_serial_model_has_no_race_regions(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let total = 0.0;
            for (i in 0..len(x)) {
                total += x[i];
            }
            return total;
        }
        """
        assert diags(src, "serial") == []


class TestKokkos:
    def test_functor_scalar_write_is_definite(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let total = 0.0;
            parallel_for(len(x), (i) => {
                total += x[i];
            });
            return total;
        }
        """
        assert ("shared-scalar-write", "definite") in kinds(src, "kokkos")

    def test_parallel_reduce_is_clean(self):
        src = """
        kernel sum(x: array<float>) -> float {
            return parallel_reduce(len(x), "sum", (i) => x[i]);
        }
        """
        assert diags(src, "kokkos") == []

    def test_atomic_add_builtin_is_clean(self):
        src = """
        kernel sum(x: array<float>, out: array<float>) {
            parallel_for(len(x), (i) => {
                atomic_add(out, 0, x[i]);
            });
        }
        """
        assert diags(src, "kokkos") == []


class TestGPU:
    def test_unguarded_global_tid_accumulate_is_flagged(self):
        src = """
        kernel sum(x: array<float>, result: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                result[0] += x[i];
            }
        }
        """
        assert any(d.analyzer == "race" for d in diags(src, "cuda"))

    def test_atomic_add_gpu_is_clean(self):
        src = """
        kernel sum(x: array<float>, result: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_add(result, 0, x[i]);
            }
        }
        """
        assert diags(src, "cuda") == []

    def test_elementwise_gpu_is_clean(self):
        src = """
        kernel relu(x: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                x[i] = max(x[i], 0.0);
            }
        }
        """
        assert diags(src, "hip") == []
