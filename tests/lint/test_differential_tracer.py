"""Satellite: the differential corpus between MiniParSan and the Tracer.

Two directions, both over the handwritten corpus:

* **soundness on good code** — every baseline and every solution variant
  lints with zero ``definite`` diagnostics (no false convictions);
* **coverage on bad code** — every seeded racy/deadlocky mutant that the
  *dynamic* Tracer convicts is also flagged statically (any certainty),
  or is explicitly listed in ``KNOWN_STATIC_MISSES``.
"""

import numpy as np

from repro.bench import all_problems, baseline_source, render_prompt
from repro.bench.spec import EXECUTION_MODELS
from repro.harness import Runner
from repro.lint import definite, lint_source
from repro.models.mutate import _MUTATORS, mutator_names
from repro.models.solutions import variants_for

#: mutators that introduce a data race or a communication deadlock —
#: the class of bug the dynamic Tracer convicts at runtime
RACE_MUTATORS = [
    "drop_reduction_clause",
    "drop_atomic_pragma",
    "drop_critical",
    "atomic_to_plain",
    "inplace_stencil",
    "mpi_collective_skew",
    "mpi_recv_deadlock",
]

#: (problem, model, mutator) triples the static analyzer is known to
#: miss.  Empty today; the mechanism stays so a future analyzer change
#: can document a regression instead of silently shipping it.
KNOWN_STATIC_MISSES = set()

#: dynamic-only runner: the screen under test must not pre-empt the
#: Tracer verdict this corpus is differenced against
RUNNER = Runner(correctness_trials=1, static_screen=False)


def _corpus():
    for p in all_problems():
        yield f"baseline/{p.name}", "serial", baseline_source(p.name)
        for model in EXECUTION_MODELS:
            for i, v in enumerate(variants_for(p, model)):
                yield f"{p.name}/{model}[{i}]", model, v.source


def _race_mutants():
    """Deterministically seeded racy mutants of every solution variant."""
    for p in all_problems():
        for model in EXECUTION_MODELS:
            if model == "serial":
                continue
            variants = variants_for(p, model)
            if not variants:
                continue
            source = variants[0].source
            applicable = set(mutator_names(model))
            for name in RACE_MUTATORS:
                if name not in applicable:
                    continue
                mutated = _MUTATORS[name](source, np.random.default_rng(7))
                if mutated is not None and mutated != source:
                    yield p, model, name, mutated


def _tracer_convicts(res) -> bool:
    detail = res.detail.lower()
    return res.status == "timeout" or "race" in detail or "deadlock" in detail


def test_handwritten_corpus_has_zero_definite_diagnostics():
    bad = []
    for label, model, source in _corpus():
        for d in definite(lint_source(source, model)):
            bad.append(f"{label}: {d.render()}")
    assert bad == []


def test_every_tracer_convicted_mutant_is_flagged_statically():
    escaped, convicted = [], 0
    for p, model, name, mutated in _race_mutants():
        res = RUNNER.evaluate_sample(mutated, render_prompt(p, model))
        if not _tracer_convicts(res):
            continue
        convicted += 1
        diags = lint_source(mutated, model)
        if any(d.analyzer in ("race", "mpi") for d in diags):
            continue
        if (p.name, model, name) in KNOWN_STATIC_MISSES:
            continue
        escaped.append(f"{p.name}/{model}/{name}: "
                       f"{res.status} ({res.detail})")
    assert convicted > 0, "mutant corpus produced no Tracer convictions"
    assert escaped == []


def test_known_miss_list_has_no_stale_entries():
    live = {(p.name, model, name)
            for p, model, name, _ in _race_mutants()}
    assert KNOWN_STATIC_MISSES <= live
