"""Satellite: AST usage check vs the token-text fallback, in parity
across the full handwritten solutions corpus."""

from repro.bench import all_problems
from repro.bench.spec import EXECUTION_MODELS
from repro.harness import uses_parallel_model, uses_parallel_model_text
from repro.harness.usagecheck import _USAGE_PATTERNS
from repro.lang import compile_source
from repro.lint import check_usage
from repro.models.solutions import variants_for

#: a correct serial kernel whose *comments* name every parallel API
_COMMENT_ONLY = """
// This version deliberately avoids mpi_send(), mpi_recv_float() and
// pragma omp parallel for; see parallel_for() notes in the docs.
/* thread_idx() would also work on a GPU. */
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""


class TestParity:
    def test_ast_and_text_oracles_agree_on_every_solution(self):
        disagreements = []
        for p in all_problems():
            for model in EXECUTION_MODELS:
                for i, v in enumerate(variants_for(p, model)):
                    ast = uses_parallel_model(v.source, model)
                    text = uses_parallel_model_text(v.source, model)
                    if ast != text:
                        disagreements.append(
                            f"{p.name}/{model}[{i}]: ast={ast} text={text}")
        assert disagreements == []


class TestCommentFalseMatch:
    def test_raw_source_regex_would_have_matched(self):
        # documents the bug the lexed-text fallback fixes: the paper's
        # original raw-source scan sees the APIs named in comments
        assert any(p.search(_COMMENT_ONLY)
                   for p in _USAGE_PATTERNS["mpi"])

    def test_comment_mentions_do_not_count_as_usage(self):
        for model in ("openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"):
            assert not uses_parallel_model(_COMMENT_ONLY, model)
            assert not uses_parallel_model_text(_COMMENT_ONLY, model)

    def test_comment_only_program_gets_usage_diagnostic(self):
        checked = compile_source(_COMMENT_ONLY)
        (diag,) = check_usage(checked, "mpi")
        assert diag.analyzer == "usage"
        assert diag.kind == "model-not-used"
        assert diag.certainty == "definite"
        assert not diag.blocking      # scored not_parallel, never static_fail

    def test_string_literal_mention_does_not_count(self):
        src = """
        kernel label(x: array<float>) -> float {
            let tag = "mpi_send";
            return x[0];
        }
        """
        assert not uses_parallel_model(src, "mpi")
        assert not uses_parallel_model_text(src, "mpi")

    def test_serial_is_always_satisfied(self):
        assert uses_parallel_model(_COMMENT_ONLY, "serial")
        assert uses_parallel_model_text(_COMMENT_ONLY, "serial")
