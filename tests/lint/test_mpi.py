"""Unit tests for the symbolic MPI deadlock / mismatch analyzer."""

from repro.lang import compile_source
from repro.lint import check_mpi


def diags(source, model="mpi"):
    return check_mpi(compile_source(source), model)


def kinds(source, model="mpi"):
    return {(d.kind, d.certainty) for d in diags(source, model)}


class TestDeadlocks:
    def test_recv_without_send_is_definite(self):
        src = """
        kernel sum(x: array<float>) -> float {
            return mpi_recv_float((mpi_rank() + 1) % mpi_size(), 0);
        }
        """
        assert ("recv-without-send", "definite") in kinds(src)

    def test_rank_forked_collective_is_definite(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let local = 0.0;
            if (mpi_rank() == 0) {
                local = mpi_allreduce_float(local, "sum");
            }
            return local;
        }
        """
        assert ("collective-mismatch", "definite") in kinds(src)

    def test_more_recvs_than_sends_is_definite(self):
        src = """
        kernel relay(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                mpi_send(x[0], 1, 0);
            }
            let a = mpi_recv_float(0, 0);
            let b = mpi_recv_float(0, 0);
            return a + b;
        }
        """
        assert ("more-recvs-than-sends", "definite") in kinds(src)


class TestLoopBounds:
    def test_recvs_in_for_bounds_are_counted(self):
        # regression: comm calls appearing only in for-loop bounds were
        # folded into the loop token and never counted
        src = """
        kernel drain(x: array<int>) -> int {
            mpi_send(x[0], 1, 0);
            let total = 0;
            for (i in 0..mpi_recv_int(0, 0)) {
                total += 1;
            }
            for (j in 0..mpi_recv_int(0, 0)) {
                total += 1;
            }
            return total;
        }
        """
        assert ("more-recvs-than-sends", "definite") in kinds(src)

    def test_collective_in_for_bound_matches_direct_call(self):
        # bounds are evaluated once, so a collective there pairs with a
        # straight-line collective on the other side of a rank fork
        src = """
        kernel agree(x: array<int>) -> int {
            let n = 0;
            if (mpi_rank() == 0) {
                n = mpi_allreduce_int(1, "sum");
            } else {
                for (i in 0..mpi_allreduce_int(1, "sum")) {
                    n += 1;
                }
            }
            return n;
        }
        """
        assert all(d.certainty != "definite" for d in diags(src))


class TestCleanPrograms:
    def test_allreduce_on_all_ranks_is_clean(self):
        src = """
        kernel sum(x: array<float>) -> float {
            let rank = mpi_rank();
            let size = mpi_size();
            let chunk = (len(x) + size - 1) / size;
            let local = 0.0;
            for (i in rank * chunk..min((rank + 1) * chunk, len(x))) {
                local += x[i];
            }
            return mpi_allreduce_float(local, "sum");
        }
        """
        assert diags(src) == []

    def test_paired_send_recv_is_clean_of_definites(self):
        src = """
        kernel shift(x: array<float>) -> float {
            let rank = mpi_rank();
            mpi_send(x[0], (rank + 1) % mpi_size(), 0);
            return mpi_recv_float((rank + mpi_size() - 1) % mpi_size(), 0);
        }
        """
        assert all(d.certainty != "definite" for d in diags(src))

    def test_non_mpi_model_is_ignored(self):
        src = """
        kernel sum(x: array<float>) -> float {
            return mpi_recv_float(0, 0);
        }
        """
        assert diags(src, model="openmp") == []

    def test_data_forked_collective_is_only_possible(self):
        src = """
        kernel norm(x: array<float>) -> float {
            let local = 0.0;
            if (len(x) > 0) {
                local = x[0];
            }
            return mpi_allreduce_float(local, "sum");
        }
        """
        assert all(d.certainty != "definite" for d in diags(src))
