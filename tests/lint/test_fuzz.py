"""Satellite: fuzz MiniParSan with ~200 seeded mutants.

Three properties, checked over mutants of the whole solutions corpus:

* the linter never raises — broken sources yield ``build`` diagnostics;
* linting is deterministic — two runs over the same mutant agree;
* **no false negatives under OpenMP** — a mutant with zero race
  diagnostics (at any certainty) never trips the dynamic Tracer's race
  detector when executed.
"""

import numpy as np
import pytest

from repro.bench import all_problems, render_prompt
from repro.bench.spec import EXECUTION_MODELS
from repro.harness import Runner
from repro.lint import lint_source
from repro.models.mutate import apply_bug
from repro.models.solutions import variants_for

N_MUTANTS = 200

RUNNER = Runner(correctness_trials=1, static_screen=False)


def _mutants():
    """~N_MUTANTS deterministic (model, source) mutants, cycling the
    corpus with one fresh rng stream per slot."""
    cases = []
    for p in all_problems():
        for model in EXECUTION_MODELS:
            if model == "serial":
                continue
            for v in variants_for(p, model):
                cases.append((p, model, v.source))
    out = []
    for k in range(N_MUTANTS):
        p, model, source = cases[k % len(cases)]
        mutated = apply_bug(source, model, np.random.default_rng(10_000 + k))
        if mutated is not None:
            out.append((p, model, mutated))
    return out


@pytest.fixture(scope="module")
def mutants():
    got = _mutants()
    assert len(got) > N_MUTANTS * 0.9       # apply_bug almost always applies
    return got


def test_linter_never_raises_and_is_deterministic(mutants):
    for _, model, source in mutants:
        first = lint_source(source, model)      # must not raise
        second = lint_source(source, model)
        assert first == second


def test_lint_race_clean_openmp_mutants_never_trip_the_tracer(mutants):
    checked = 0
    for p, model, source in mutants:
        if model != "openmp":
            continue
        diags = lint_source(source, model)
        if any(d.analyzer in ("race", "build") for d in diags):
            continue                            # flagged or unparseable
        res = RUNNER.evaluate_sample(source, render_prompt(p, model))
        checked += 1
        assert "race" not in res.detail.lower(), (
            f"{p.name}/openmp: lint-clean mutant raced dynamically "
            f"({res.status}: {res.detail})\n{source}")
    assert checked > 0
