"""Unit tests for the MiniPar lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import lex
from repro.lang.tokens import TokKind


def kinds(source):
    return [t.kind for t in lex(source)]


def texts(source):
    return [t.text for t in lex(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = lex("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_integer_literal(self):
        toks = lex("42")
        assert toks[0].kind is TokKind.INT
        assert toks[0].text == "42"

    def test_float_literal(self):
        toks = lex("3.25")
        assert toks[0].kind is TokKind.FLOAT
        assert toks[0].text == "3.25"

    def test_float_with_exponent(self):
        toks = lex("1e-3 2.5E+2")
        assert toks[0].kind is TokKind.FLOAT
        assert toks[1].kind is TokKind.FLOAT

    def test_name(self):
        toks = lex("foo_bar2")
        assert toks[0].kind is TokKind.NAME
        assert toks[0].text == "foo_bar2"

    def test_string_literal(self):
        toks = lex('"sum"')
        assert toks[0].kind is TokKind.STRING
        assert toks[0].text == "sum"

    def test_range_vs_float_dot(self):
        # "0..n" must lex as INT DOTDOT NAME, not a malformed float
        toks = lex("0..n")
        assert [t.kind for t in toks[:3]] == [TokKind.INT, TokKind.DOTDOT, TokKind.NAME]

    def test_two_char_operators(self):
        src = "<= >= == != && || += -= *= /= -> => .."
        expected = [
            TokKind.LE, TokKind.GE, TokKind.EQEQ, TokKind.NEQ,
            TokKind.ANDAND, TokKind.OROR, TokKind.PLUSEQ, TokKind.MINUSEQ,
            TokKind.STAREQ, TokKind.SLASHEQ, TokKind.ARROW, TokKind.FATARROW,
            TokKind.DOTDOT, TokKind.EOF,
        ]
        assert kinds(src) == expected

    def test_one_char_operators(self):
        assert kinds("+ - * / % < > = !")[:-1] == [
            TokKind.PLUS, TokKind.MINUS, TokKind.STAR, TokKind.SLASH,
            TokKind.PERCENT, TokKind.LT, TokKind.GT, TokKind.ASSIGN, TokKind.NOT,
        ]


class TestTrivia:
    def test_line_comment(self):
        assert texts("x // the variable\ny") == ["x", "y"]

    def test_block_comment(self):
        assert texts("x /* several\nlines */ y") == ["x", "y"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            lex("x /* oops")

    def test_whitespace_only(self):
        assert kinds("  \t \n ") == [TokKind.EOF]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = lex("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as ei:
            lex("x\n  @")
        assert ei.value.line == 2
        assert ei.value.col == 3


class TestLexErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            lex("a $ b")

    def test_digit_required_after_decimal_point_mid_expr(self):
        with pytest.raises(LexError):
            lex("1.x")

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            lex("1e+")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            lex('"abc')

    def test_string_with_newline(self):
        with pytest.raises(LexError):
            lex('"ab\ncd"')
