"""Round-trip tests for the unparser.

The bug injectors rely on unparse/parse stability, so the strongest check
is structural: for every program in the solution bank and every baseline,
``parse(unparse(parse(src)))`` must reproduce the same AST (compared via
a canonical re-unparse) and type-check identically.
"""

import pytest

from repro.bench import all_problems, baseline_source
from repro.lang import compile_source, parse, unparse
from repro.models.solutions import variants_for

ALL_SOURCES = []
for _p in all_problems():
    ALL_SOURCES.append((f"baseline/{_p.name}", baseline_source(_p.name)))
for _p in all_problems()[::7]:  # a spread of problems x all exec models
    for _m in ("serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"):
        for _v in variants_for(_p, _m):
            ALL_SOURCES.append((f"{_p.name}/{_m}/{_v.name}", _v.source))


@pytest.mark.parametrize("label,source", ALL_SOURCES,
                         ids=[lab for lab, _ in ALL_SOURCES])
def test_round_trip_is_fixed_point(label, source):
    once = unparse(parse(source))
    twice = unparse(parse(once))
    assert once == twice


@pytest.mark.parametrize("label,source", ALL_SOURCES[:40],
                         ids=[lab for lab, _ in ALL_SOURCES[:40]])
def test_round_trip_typechecks(label, source):
    rendered = unparse(parse(source))
    checked = compile_source(rendered)
    original = compile_source(source)
    assert checked.builtins_used == original.builtins_used
    assert checked.uses_omp_pragmas == original.uses_omp_pragmas
    assert set(checked.signatures) == set(original.signatures)


class TestUnparseForms:
    def round_trip(self, src):
        once = unparse(parse(src))
        assert unparse(parse(once)) == once
        return once

    def test_else_if_chain(self):
        out = self.round_trip(
            "kernel f(n: int) -> int { if (n > 0) { return 1; } "
            "else if (n < 0) { return -1; } else { return 0; } }"
        )
        assert "else if" in out

    def test_negative_int_literal(self):
        out = self.round_trip("kernel f() -> int { return -1; }")
        assert "-1" in out or "- 1" in out

    def test_float_literal_stays_float(self):
        out = self.round_trip("kernel f() -> float { return 2.0; }")
        assert "2.0" in out

    def test_pragma_clauses_preserved(self):
        out = self.round_trip(
            "kernel f(x: array<float>) { let s = 0.0; "
            "pragma omp parallel for reduction(+: s) schedule(dynamic) "
            "for (i in 0..len(x)) { s += x[i]; } }"
        )
        assert "reduction(+: s)" in out
        assert "schedule(dynamic)" in out

    def test_lambda_forms(self):
        out = self.round_trip(
            'kernel f(x: array<float>) -> float { '
            'parallel_for(len(x), (i) => { x[i] = 0.0; }); '
            'return parallel_reduce(len(x), "sum", (i) => x[i]); }'
        )
        assert "=>" in out

    def test_step_loops(self):
        out = self.round_trip(
            "kernel f() { for (i in 0..10 step 2) { } }"
        )
        assert "step 2" in out

    def test_parentheses_preserve_precedence(self):
        src = "kernel f(a: int, b: int, c: int) -> int { return (a + b) * c; }"
        out = unparse(parse(src))
        from repro.lang import compile_source as cs
        # semantic check: evaluate both
        from repro.runtime import DEFAULT_MACHINE, ExecCtx, SerialRuntime, compile_program
        for text in (src, out):
            prog = compile_program(cs(text))
            ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
            assert prog.run_kernel("f", ctx, [2, 3, 4]) == 20
