"""Property-style tests: the front end must reject mutated/truncated
sources with CompileError — never crash, never mis-accept garbage silently.

The bug injectors lean on this: a syntax mutation must surface as a
recorded build failure, not an interpreter exception.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import all_problems, baseline_source
from repro.lang import CompileError, compile_source

SOURCES = [baseline_source(p.name) for p in all_problems()[:20]]


@settings(max_examples=120, deadline=None)
@given(
    which=st.integers(0, len(SOURCES) - 1),
    cut=st.floats(0.05, 0.95),
)
def test_truncated_programs_fail_cleanly(which, cut):
    src = SOURCES[which]
    truncated = src[: int(len(src) * cut)]
    try:
        compile_source(truncated)
    except CompileError:
        pass  # the expected outcome for almost every cut point
    # a lucky cut may still be a valid program; that is fine too


@settings(max_examples=120, deadline=None)
@given(
    which=st.integers(0, len(SOURCES) - 1),
    seed=st.integers(0, 2**31 - 1),
)
def test_random_character_edits_never_crash_the_frontend(which, seed):
    rng = np.random.default_rng(seed)
    src = list(SOURCES[which])
    for _ in range(int(rng.integers(1, 4))):
        pos = int(rng.integers(0, len(src)))
        action = rng.integers(0, 3)
        if action == 0:
            src[pos] = chr(int(rng.integers(33, 126)))
        elif action == 1:
            del src[pos]
        else:
            src.insert(pos, chr(int(rng.integers(33, 126))))
    mutated = "".join(src)
    try:
        compile_source(mutated)
    except CompileError:
        pass


def test_compile_error_positions_are_reported():
    with pytest.raises(CompileError) as ei:
        compile_source("kernel f() {\n    let a = ;\n}")
    assert ei.value.line == 2


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=120))
def test_arbitrary_ascii_never_crashes(text):
    try:
        compile_source(text)
    except CompileError:
        pass
