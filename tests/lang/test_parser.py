"""Unit tests for the MiniPar parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang import types as T


SAXPY = """
kernel saxpy(a: float, x: array<float>, y: array<float>) {
    for (i in 0..len(x)) {
        y[i] = a * x[i] + y[i];
    }
}
"""


class TestKernels:
    def test_simple_kernel(self):
        prog = parse(SAXPY)
        assert len(prog.kernels) == 1
        k = prog.kernels[0]
        assert k.name == "saxpy"
        assert [p.name for p in k.params] == ["a", "x", "y"]
        assert k.params[0].type is T.FLOAT
        assert k.params[1].type is T.ARRAY_FLOAT
        assert k.ret is None

    def test_return_type(self):
        prog = parse("kernel f(x: int) -> float { return float(x); }")
        assert prog.kernels[0].ret is T.FLOAT

    def test_multiple_kernels(self):
        prog = parse("kernel a() { } kernel b() { }")
        assert [k.name for k in prog.kernels] == ["a", "b"]
        assert prog.kernel("b").name == "b"

    def test_kernel_lookup_missing(self):
        prog = parse("kernel a() { }")
        with pytest.raises(KeyError):
            prog.kernel("nope")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_2d_array_param(self):
        prog = parse("kernel f(m: array2d<float>) { }")
        assert prog.kernels[0].params[0].type is T.ARRAY2D_FLOAT


class TestStatements:
    def _body(self, stmts_src):
        prog = parse("kernel f(x: array<float>, n: int) { %s }" % stmts_src)
        return prog.kernels[0].body.stmts

    def test_let_with_annotation(self):
        (s,) = self._body("let total: float = 0.0;")
        assert isinstance(s, ast.Let)
        assert s.declared is T.FLOAT

    def test_let_inferred(self):
        (s,) = self._body("let total = 0;")
        assert s.declared is None

    def test_compound_assignment(self):
        (s,) = self._body("x[0] += 1.0;")
        assert isinstance(s, ast.Assign)
        assert s.op == "+="
        assert isinstance(s.target, ast.Index)

    def test_if_else_chain(self):
        (s,) = self._body("if (n > 0) { } else if (n < 0) { } else { }")
        assert isinstance(s, ast.If)
        assert isinstance(s.orelse, ast.If)
        assert isinstance(s.orelse.orelse, ast.Block)

    def test_for_with_step(self):
        (s,) = self._body("for (i in 0..n step 2) { }")
        assert isinstance(s, ast.For)
        assert s.step is not None

    def test_while(self):
        (s,) = self._body("while (n > 0) { break; }")
        assert isinstance(s, ast.While)
        assert isinstance(s.body.stmts[0], ast.Break)

    def test_return_void(self):
        (s,) = self._body("return;")
        assert isinstance(s, ast.Return)
        assert s.value is None

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            self._body("1 + 2 = 3;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self._body("let a = 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("kernel f() { let a = 1;")


class TestOmpPragmas:
    def test_parallel_for(self):
        prog = parse(
            """
            kernel f(x: array<float>) {
                pragma omp parallel for
                for (i in 0..len(x)) { x[i] = 0.0; }
            }
            """
        )
        (s,) = prog.kernels[0].body.stmts
        assert isinstance(s, ast.OmpParallelFor)
        assert s.clauses == ()

    def test_parallel_for_with_reduction(self):
        prog = parse(
            """
            kernel f(x: array<float>) -> float {
                let total = 0.0;
                pragma omp parallel for reduction(+: total)
                for (i in 0..len(x)) { total += x[i]; }
                return total;
            }
            """
        )
        s = prog.kernels[0].body.stmts[1]
        assert isinstance(s, ast.OmpParallelFor)
        (c,) = s.clauses
        assert (c.kind, c.op, c.var) == ("reduction", "+", "total")

    def test_reduction_min(self):
        prog = parse(
            """
            kernel f(x: array<float>) {
                let m = 0.0;
                pragma omp parallel for reduction(min: m) schedule(dynamic)
                for (i in 0..len(x)) { m = min(m, x[i]); }
            }
            """
        )
        s = prog.kernels[0].body.stmts[1]
        assert [c.kind for c in s.clauses] == ["reduction", "schedule"]
        assert s.clauses[0].op == "min"
        assert s.clauses[1].schedule == "dynamic"

    def test_critical(self):
        prog = parse(
            """
            kernel f(x: array<float>) {
                pragma omp parallel for
                for (i in 0..len(x)) {
                    pragma omp critical
                    { x[0] += 1.0; }
                }
            }
            """
        )
        loop = prog.kernels[0].body.stmts[0].loop
        assert isinstance(loop.body.stmts[0], ast.OmpCritical)

    def test_atomic(self):
        prog = parse(
            """
            kernel f(x: array<float>) {
                pragma omp atomic
                x[0] += 1.0;
            }
            """
        )
        (s,) = prog.kernels[0].body.stmts
        assert isinstance(s, ast.OmpAtomic)
        assert s.update.op == "+="

    def test_parallel_for_requires_loop(self):
        with pytest.raises(ParseError):
            parse("kernel f() { pragma omp parallel for let a = 1; }")

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse("kernel f() { pragma omp sections { } }")

    def test_bad_reduction_operator(self):
        with pytest.raises(ParseError):
            parse(
                "kernel f() { let s = 0; pragma omp parallel for "
                "reduction(-: s) for (i in 0..4) { } }"
            )


class TestExpressions:
    def _expr(self, src):
        prog = parse("kernel f(x: array<float>, n: int) { let v = %s; }" % src)
        return prog.kernels[0].body.stmts[0].init

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_parentheses(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_comparison_binds_looser_than_arithmetic(self):
        e = self._expr("n + 1 < 2 * n")
        assert e.op == "<"

    def test_logical_operators(self):
        e = self._expr("n > 0 && n < 10 || n == 42")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_chain(self):
        e = self._expr("--n")
        assert isinstance(e, ast.Unary) and isinstance(e.operand, ast.Unary)

    def test_index_2d(self):
        e = self._expr("x[n, n]") if False else None
        prog = parse("kernel f(m: array2d<float>, i: int) { let v = m[i, i]; }")
        init = prog.kernels[0].body.stmts[0].init
        assert isinstance(init, ast.Index)
        assert len(init.indices) == 2

    def test_call_with_args(self):
        e = self._expr("max(n, 3)")
        assert isinstance(e, ast.Call)
        assert e.func == "max"
        assert len(e.args) == 2

    def test_lambda_expr_argument(self):
        prog = parse(
            'kernel f(x: array<float>) { '
            'let s = parallel_reduce(len(x), "sum", (i) => x[i]); }'
        )
        call = prog.kernels[0].body.stmts[0].init
        lam = call.args[2]
        assert isinstance(lam, ast.Lambda)
        assert lam.params == ("i",)
        assert lam.body_expr is not None

    def test_lambda_block_argument(self):
        prog = parse(
            "kernel f(x: array<float>) { "
            "parallel_for(len(x), (i) => { x[i] = 0.0; }); }"
        )
        call = prog.kernels[0].body.stmts[0].expr
        lam = call.args[1]
        assert lam.body_block is not None

    def test_parenthesized_expr_not_lambda(self):
        e = self._expr("(n) + 1")
        assert isinstance(e, ast.Binary)

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(ParseError):
            self._expr("let")

    def test_range_of_calls(self):
        prog = parse("kernel f(x: array<float>) { for (i in 0..len(x)) { } }")
        loop = prog.kernels[0].body.stmts[0]
        assert isinstance(loop.hi, ast.Call)
