"""Unit tests for the MiniPar type checker."""

import pytest

from repro.lang import compile_source
from repro.lang.errors import TypeError_
from repro.lang import types as T


def ok(src):
    return compile_source(src)


def bad(src):
    with pytest.raises(TypeError_) as ei:
        compile_source(src)
    return ei.value


class TestDeclarations:
    def test_infer_let_type(self):
        cp = ok("kernel f() { let a = 1; let b = 2.0; let c = true; }")
        assert cp.signatures["f"].ret is None

    def test_annotation_promotion_int_to_float(self):
        ok("kernel f() { let a: float = 1; }")

    def test_annotation_mismatch(self):
        err = bad("kernel f() { let a: int = 1.5; }")
        assert "initialize" in str(err)

    def test_shadowing_forbidden(self):
        bad("kernel f(x: int) { let x = 1; }")

    def test_sequential_scopes_may_reuse_names(self):
        ok("kernel f() { for (i in 0..3) { } for (i in 0..3) { } }")

    def test_use_before_declaration(self):
        bad("kernel f() { let a = b; }")

    def test_block_scoping_limits_visibility(self):
        bad("kernel f() { if (true) { let a = 1; } let b = a; }")

    def test_duplicate_kernel(self):
        bad("kernel f() { } kernel f() { }")

    def test_kernel_shadowing_builtin(self):
        bad("kernel len(x: array<float>) -> int { return 0; }")

    def test_duplicate_param(self):
        bad("kernel f(a: int, a: int) { }")


class TestAssignment:
    def test_float_var_accepts_int(self):
        ok("kernel f() { let a = 1.0; a = 2; }")

    def test_int_var_rejects_float(self):
        bad("kernel f() { let a = 1; a = 2.0; }")

    def test_compound_int_accumulate_float_rejected(self):
        bad("kernel f() { let a = 1; a += 2.0; }")

    def test_index_assignment(self):
        ok("kernel f(x: array<float>) { x[0] = 1; }")

    def test_index_assignment_wrong_type(self):
        bad("kernel f(x: array<int>) { x[0] = 1.5; }")

    def test_assign_to_undeclared(self):
        bad("kernel f() { a = 1; }")

    def test_array_rebinding_same_type(self):
        ok("kernel f(x: array<float>) { let y = copy(x); y = x; }")

    def test_array_compound_assignment_rejected(self):
        bad("kernel f(x: array<float>) { x += x; }")

    def test_non_int_index(self):
        bad("kernel f(x: array<float>) { x[1.5] = 0.0; }")

    def test_wrong_index_arity(self):
        bad("kernel f(x: array<float>) { x[0, 0] = 0.0; }")
        bad("kernel f(m: array2d<float>) { m[0] = 0.0; }")


class TestControlFlow:
    def test_condition_must_be_bool(self):
        bad("kernel f() { if (1) { } }")
        bad("kernel f() { while (1.0) { } }")

    def test_range_bounds_must_be_int(self):
        bad("kernel f() { for (i in 0..1.5) { } }")

    def test_step_must_be_int(self):
        bad("kernel f() { for (i in 0..4 step 0.5) { } }")

    def test_break_outside_loop(self):
        bad("kernel f() { break; }")

    def test_continue_inside_loop_ok(self):
        ok("kernel f() { for (i in 0..4) { continue; } }")

    def test_missing_return(self):
        err = bad("kernel f(n: int) -> int { if (n > 0) { return 1; } }")
        assert "without returning" in str(err)

    def test_return_on_both_branches(self):
        ok("kernel f(n: int) -> int { if (n > 0) { return 1; } else { return 0; } }")

    def test_return_value_from_unit_kernel(self):
        bad("kernel f() { return 1; }")

    def test_return_type_mismatch(self):
        bad("kernel f() -> int { return 1.5; }")

    def test_return_promotes_int_to_float(self):
        ok("kernel f() -> float { return 1; }")


class TestOperators:
    def test_int_int_arithmetic_is_int(self):
        cp = ok("kernel f() -> int { return 3 / 2; }")
        assert cp.signatures["f"].ret is T.INT

    def test_mixed_arithmetic_promotes(self):
        ok("kernel f() -> float { return 3 / 2.0; }")

    def test_mod_requires_ints(self):
        bad("kernel f() { let a = 1.5 % 2; }")

    def test_logical_requires_bool(self):
        bad("kernel f() { let a = 1 && true; }")

    def test_compare_bool_with_number(self):
        bad("kernel f() { let a = true == 1; }")

    def test_not_on_number(self):
        bad("kernel f() { let a = !1; }")

    def test_negate_bool(self):
        bad("kernel f() { let a = -true; }")


class TestCalls:
    def test_user_kernel_call(self):
        ok(
            "kernel helper(a: int) -> int { return a + 1; } "
            "kernel f() -> int { return helper(1); }"
        )

    def test_unknown_function(self):
        bad("kernel f() { frobnicate(1); }")

    def test_wrong_arg_count(self):
        bad("kernel g(a: int) { } kernel f() { g(1, 2); }")

    def test_wrong_arg_type(self):
        bad("kernel g(a: array<float>) { } kernel f() { g(1); }")

    def test_builtin_len(self):
        ok("kernel f(x: array<float>) -> int { return len(x); }")

    def test_len_on_2d_rejected(self):
        bad("kernel f(m: array2d<float>) -> int { return len(m); }")

    def test_rows_cols(self):
        ok("kernel f(m: array2d<float>) -> int { return rows(m) + cols(m); }")

    def test_sqrt_returns_float(self):
        cp = ok("kernel f() -> float { return sqrt(4); }")
        assert cp.signatures["f"].ret is T.FLOAT

    def test_select(self):
        ok("kernel f(n: int) -> int { return select(n > 0, 1, 0); }")
        bad("kernel f(n: int) -> int { return select(n, 1, 0); }")

    def test_alloc(self):
        ok("kernel f() -> float { let a = alloc_float(4); return a[0]; }")

    def test_sort_builtin(self):
        ok("kernel f(x: array<float>) { sort(x); }")
        bad("kernel f(m: array2d<float>) { sort(m); }")


class TestLambdasAndPatterns:
    def test_parallel_for(self):
        cp = ok(
            "kernel f(x: array<float>) { parallel_for(len(x), (i) => { x[i] = 0.0; }); }"
        )
        assert "kokkos" in cp.builtin_categories

    def test_parallel_reduce_result_type(self):
        cp = ok(
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(len(x), "sum", (i) => x[i]); }'
        )
        assert cp.signatures["f"].ret is T.FLOAT

    def test_bad_reduce_op_name(self):
        bad(
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(len(x), "plus", (i) => x[i]); }'
        )

    def test_lambda_wrong_param_count(self):
        bad("kernel f(x: array<float>) { parallel_for(len(x), (i, j) => { }); }")

    def test_lambda_outside_pattern(self):
        bad("kernel f() { let g = (i) => 1; }")

    def test_lambda_where_scalar_expected(self):
        bad("kernel f(x: array<float>) { parallel_for((i) => 1, (i) => { }); }")

    def test_scan_signature(self):
        ok(
            'kernel f(x: array<float>, out: array<float>) { '
            'parallel_scan_inclusive(len(x), "sum", (i) => x[i], out); }'
        )

    def test_string_arg_in_wrong_place(self):
        bad('kernel f() { let a = max("sum", 1); }')


class TestMPIAndGPU:
    def test_mpi_category_recorded(self):
        cp = ok(
            'kernel f(x: array<float>) -> float { '
            'let local = 0.0; '
            'let total = mpi_allreduce_float(local, "sum"); '
            'return total; }'
        )
        assert "mpi" in cp.builtin_categories
        assert "mpi_allreduce_float" in cp.builtins_used

    def test_gpu_category_recorded(self):
        cp = ok(
            "kernel f(x: array<float>) { "
            "let i = block_idx() * block_dim() + thread_idx(); "
            "if (i < len(x)) { x[i] = 0.0; } }"
        )
        assert "gpu" in cp.builtin_categories

    def test_atomic_add_types(self):
        ok("kernel f(h: array<int>) { atomic_add(h, 0, 1); }")
        bad("kernel f(h: array<int>) { atomic_add(h, 0, 1.5); }")

    def test_mpi_reduce_requires_op_string(self):
        bad("kernel f() { let t = mpi_allreduce_float(1.0, 2.0); }")

    def test_omp_pragma_flag(self):
        cp = ok(
            "kernel f(x: array<float>) { "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { x[i] = 0.0; } }"
        )
        assert cp.uses_omp_pragmas

    def test_reduction_var_undeclared(self):
        bad(
            "kernel f(x: array<float>) { "
            "pragma omp parallel for reduction(+: total) "
            "for (i in 0..len(x)) { } }"
        )

    def test_reduction_var_not_numeric(self):
        bad(
            "kernel f(x: array<float>) { let flag = true; "
            "pragma omp parallel for reduction(+: flag) "
            "for (i in 0..len(x)) { } }"
        )

    def test_atomic_requires_update(self):
        bad("kernel f(x: array<float>) { pragma omp atomic x[0] = 1.0; }")
