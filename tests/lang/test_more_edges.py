"""Additional language edge cases accumulated during development."""

import pytest

from repro.lang import compile_source, parse, unparse
from repro.lang.errors import ParseError, TypeError_


class TestParserEdges:
    def test_num_threads_clause_round_trips(self):
        src = ("kernel f(x: array<float>) { "
               "pragma omp parallel for num_threads(8) "
               "for (i in 0..len(x)) { x[i] = 0.0; } }")
        out = unparse(parse(src))
        assert "num_threads(8)" in out
        assert unparse(parse(out)) == out

    def test_deeply_nested_expressions(self):
        depth = 40
        src = ("kernel f() -> int { return "
               + "(" * depth + "1" + ")" * depth + " + 1; }")
        compile_source(src)

    def test_deeply_nested_blocks(self):
        body = "if (true) { " * 25 + "let a = 1;" + " }" * 25
        compile_source(f"kernel f() {{ {body} }}")

    def test_comment_only_kernel_body(self):
        compile_source("kernel f() { /* nothing to do */ }")

    def test_crlf_and_tabs_tolerated(self):
        compile_source("kernel f() {\r\n\tlet a = 1;\r\n}")

    def test_adjacent_unary_minus_and_range(self):
        # '-1..n' style text: unary minus binds to the literal
        prog = parse("kernel f(n: int) { for (i in 0..n) { let a = -1; } }")
        assert prog.kernels[0].name == "f"

    def test_call_trailing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse("kernel f() { let a = max(1, ); }")

    def test_empty_parens_expression_rejected(self):
        with pytest.raises(ParseError):
            parse("kernel f() { let a = (); }")


class TestTypecheckEdges:
    def test_return_inside_nested_loop_in_parallel_for_rejected(self):
        with pytest.raises(TypeError_):
            compile_source(
                "kernel f(x: array<float>) -> int { "
                "pragma omp parallel for "
                "for (i in 0..len(x)) { "
                "for (j in 0..4) { return 1; } } return 0; }"
            )

    def test_break_in_nested_serial_loop_inside_parallel_ok(self):
        compile_source(
            "kernel f(x: array<float>) { "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { "
            "for (j in 0..4) { break; } } }"
        )

    def test_continue_in_parallel_for_ok(self):
        compile_source(
            "kernel f(x: array<float>) { "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { "
            "if (x[i] < 0.0) { continue; } x[i] = 1.0; } }"
        )

    def test_lambda_cannot_shadow_visible_name(self):
        with pytest.raises(TypeError_):
            compile_source(
                "kernel f(x: array<float>, i: int) { "
                "parallel_for(len(x), (i) => { x[i] = 0.0; }); }"
            )

    def test_sequential_lambdas_reuse_param_name(self):
        compile_source(
            "kernel f(x: array<float>) { "
            "parallel_for(len(x), (i) => { x[i] = 0.0; }); "
            "parallel_for(len(x), (i) => { x[i] = 1.0; }); }"
        )

    def test_helper_call_before_definition(self):
        compile_source(
            "kernel f() -> int { return g(); } "
            "kernel g() -> int { return 1; }"
        )

    def test_mutual_recursion_typechecks(self):
        compile_source(
            "kernel is_even(n: int) -> int { "
            "if (n == 0) { return 1; } return is_odd(n - 1); } "
            "kernel is_odd(n: int) -> int { "
            "if (n == 0) { return 0; } return is_even(n - 1); }"
        )

    def test_string_literal_only_in_operator_slots(self):
        with pytest.raises(TypeError_):
            compile_source('kernel f() { let a = "sum"; }')

    def test_bool_array_params_supported(self):
        compile_source(
            "kernel f(flags: array<bool>) -> bool { return flags[0]; }"
        )
