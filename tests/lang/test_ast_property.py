"""Property-based round-trip: generated well-typed MiniPar ASTs survive
``unparse -> parse -> typecheck``.

The corpus round-trip tests (``test_unparse.py``) cover real programs;
this file covers the *space* — Hypothesis composes random well-typed
programs directly from AST dataclasses (typed-by-construction: every
expression strategy is indexed by the type it must produce, every
statement only references names in scope), then asserts:

* ``unparse`` of the generated AST parses;
* the rendering is a fixed point (``unparse(parse(text)) == text``);
* the parsed program type-checks with the same kernel signatures.

Failures here mean the unparser and parser disagree about MiniPar's
concrete syntax on a shape no handwritten program happened to use.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast, parse, unparse
from repro.lang.typecheck import typecheck
from repro.lang.types import BOOL, FLOAT, INT

# -- expression strategies, indexed by result type ---------------------------

#: arithmetic operators closed over int and float operands
ARITH_OPS = ("+", "-", "*")
#: comparison operators producing bool from two ints
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def int_expr(names, depth=2):
    """An int-typed expression over the int variables in ``names``."""
    leaves = [st.integers(min_value=0, max_value=99).map(
        lambda v: ast.IntLit(value=v))]
    if names:
        leaves.append(st.sampled_from(sorted(names)).map(
            lambda n: ast.Name(ident=n)))
    leaf = st.one_of(*leaves)
    if depth <= 0:
        return leaf
    sub = int_expr(names, depth - 1)
    compound = st.one_of(
        st.tuples(st.sampled_from(ARITH_OPS), sub, sub).map(
            lambda t: ast.Binary(op=t[0], left=t[1], right=t[2])),
        sub.map(lambda e: ast.Unary(op="-", operand=e)),
    )
    return st.one_of(leaf, compound)


def float_expr(names, depth=2):
    """A float-typed expression over the float variables in ``names``."""
    leaves = [st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False,
                        width=32).map(lambda v: ast.FloatLit(value=v))]
    if names:
        leaves.append(st.sampled_from(sorted(names)).map(
            lambda n: ast.Name(ident=n)))
    leaf = st.one_of(*leaves)
    if depth <= 0:
        return leaf
    sub = float_expr(names, depth - 1)
    compound = st.tuples(st.sampled_from(ARITH_OPS), sub, sub).map(
        lambda t: ast.Binary(op=t[0], left=t[1], right=t[2]))
    return st.one_of(leaf, compound)


def bool_expr(int_names):
    """A bool-typed expression: a comparison of two int expressions."""
    sub = int_expr(int_names, 1)
    return st.one_of(
        st.booleans().map(lambda v: ast.BoolLit(value=v)),
        st.tuples(st.sampled_from(CMP_OPS), sub, sub).map(
            lambda t: ast.Binary(op=t[0], left=t[1], right=t[2])),
    )


# -- statement/block strategies ----------------------------------------------


@st.composite
def typed_block(draw, int_names, float_names, fresh, depth=2):
    """A block whose statements are well-typed given the variables in
    scope.  ``fresh`` is a mutable counter list giving unique let names
    (shadowing-free by construction)."""
    int_names = set(int_names)
    float_names = set(float_names)
    stmts = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(
            ("let_int", "let_float", "assign", "if", "for", "omp_for")
            if depth > 0 else ("let_int", "let_float", "assign")))
        if kind == "let_int":
            name = f"v{fresh[0]}"
            fresh[0] += 1
            stmts.append(ast.Let(name=name,
                                 init=draw(int_expr(int_names))))
            int_names.add(name)
        elif kind == "let_float":
            name = f"v{fresh[0]}"
            fresh[0] += 1
            stmts.append(ast.Let(name=name,
                                 init=draw(float_expr(float_names))))
            float_names.add(name)
        elif kind == "assign":
            pool = sorted(int_names)
            if not pool:
                continue
            target = draw(st.sampled_from(pool))
            op = draw(st.sampled_from(("=", "+=", "-=", "*=")))
            stmts.append(ast.Assign(target=ast.Name(ident=target), op=op,
                                    value=draw(int_expr(int_names))))
        elif kind == "if":
            then = draw(typed_block(int_names, float_names, fresh,
                                    depth - 1))
            orelse = None
            if draw(st.booleans()):
                orelse = draw(typed_block(int_names, float_names, fresh,
                                          depth - 1))
            stmts.append(ast.If(cond=draw(bool_expr(int_names)),
                                then=then, orelse=orelse))
        elif kind in ("for", "omp_for"):
            var = f"v{fresh[0]}"
            fresh[0] += 1
            body = draw(typed_block(int_names | {var}, float_names, fresh,
                                    depth - 1))
            loop = ast.For(
                var=var,
                lo=ast.IntLit(value=0),
                hi=draw(int_expr(int_names, 1)),
                step=(ast.IntLit(value=draw(st.integers(1, 3)))
                      if draw(st.booleans()) else None),
                body=body)
            if kind == "for":
                stmts.append(loop)
            else:
                clauses = []
                if int_names and draw(st.booleans()):
                    clauses.append(ast.OmpClause(
                        kind="reduction",
                        op=draw(st.sampled_from(("+", "*", "min", "max"))),
                        var=draw(st.sampled_from(sorted(int_names)))))
                if draw(st.booleans()):
                    clauses.append(ast.OmpClause(
                        kind="schedule",
                        schedule=draw(st.sampled_from(
                            ("static", "dynamic", "guided")))))
                stmts.append(ast.OmpParallelFor(clauses=tuple(clauses),
                                                loop=loop))
    if not stmts:                       # assign skipped on empty scope
        stmts.append(ast.Let(name=f"v{fresh[0]}",
                             init=ast.IntLit(value=1)))
        fresh[0] += 1
    return ast.Block(stmts=tuple(stmts))


@st.composite
def programs(draw):
    """A one-kernel program: int/float params, a typed body, an int
    return."""
    n_int = draw(st.integers(min_value=0, max_value=2))
    n_float = draw(st.integers(min_value=0, max_value=2))
    int_names = {f"a{i}" for i in range(n_int)}
    float_names = {f"x{i}" for i in range(n_float)}
    params = tuple(
        [ast.Param(name=n, type=INT) for n in sorted(int_names)]
        + [ast.Param(name=n, type=FLOAT) for n in sorted(float_names)])
    fresh = [0]
    body = draw(typed_block(int_names, float_names, fresh, depth=2))
    ret = ast.Return(value=draw(int_expr(int_names, 1)))
    kernel = ast.Kernel(
        name="main", params=params, ret=INT,
        body=ast.Block(stmts=body.stmts + (ret,)))
    return ast.Program(kernels=(kernel,))


# -- the properties ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(programs())
def test_generated_ast_round_trips_and_typechecks(program):
    text = unparse(program)
    reparsed = parse(text)
    # fixed point: rendering the reparsed AST reproduces the text
    assert unparse(reparsed) == text
    checked = typecheck(reparsed)
    assert "main" in checked.signatures
    wants_omp = any(isinstance(n, ast.OmpParallelFor)
                    for n in ast.walk(program))
    assert checked.uses_omp_pragmas == wants_omp


@settings(max_examples=30, deadline=None)
@given(programs())
def test_reparse_preserves_structure(program):
    """Parsing the rendering yields a structurally equal AST (compared
    node-kind-by-node-kind in preorder; positions differ by design)."""
    reparsed = parse(unparse(program))
    kinds = [type(n).__name__ for n in ast.walk(program)]
    re_kinds = [type(n).__name__ for n in ast.walk(reparsed)]
    assert sorted(kinds) == sorted(re_kinds)
