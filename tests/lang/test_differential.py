"""Differential testing: hypothesis-generated expressions must evaluate
identically under the MiniPar closure compiler and a Python oracle that
implements the documented semantics (C-style truncating integer division,
int->float promotion, short-circuit logic)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.lang.errors import TrapError
from repro.runtime import DEFAULT_MACHINE, ExecCtx, SerialRuntime, compile_program


# -- a tiny expression AST with a Python oracle -------------------------------

class E:
    def render(self):
        raise NotImplementedError

    def value(self, env):
        raise NotImplementedError

    def is_int(self):
        raise NotImplementedError


class Lit(E):
    def __init__(self, v):
        self.v = v

    def render(self):
        if isinstance(self.v, int):
            return f"({self.v})" if self.v < 0 else str(self.v)
        return repr(float(self.v))

    def value(self, env):
        return self.v

    def is_int(self):
        return isinstance(self.v, int)


class Var(E):
    def __init__(self, name, as_int):
        self.name = name
        self.as_int = as_int

    def render(self):
        return self.name

    def value(self, env):
        return env[self.name]

    def is_int(self):
        return self.as_int


def _idiv(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class Bin(E):
    def __init__(self, op, left, right):
        self.op, self.left, self.right = op, left, right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def is_int(self):
        return self.left.is_int() and self.right.is_int()

    def value(self, env):
        a, b = self.left.value(env), self.right.value(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise ZeroDivisionError
            if self.is_int():
                return _idiv(a, b)
            return a / b
        if self.op == "%":
            if b == 0:
                raise ZeroDivisionError
            return a - _idiv(a, b) * b
        raise AssertionError(self.op)


class Call1(E):
    FNS = {"abs": abs, "sqrt": math.sqrt}

    def __init__(self, fn, arg):
        self.fn, self.arg = fn, arg

    def render(self):
        return f"{self.fn}({self.arg.render()})"

    def is_int(self):
        return self.fn == "abs" and self.arg.is_int()

    def value(self, env):
        v = self.arg.value(env)
        if self.fn == "sqrt" and v < 0:
            raise ValueError
        return self.FNS[self.fn](v)


class Select(E):
    def __init__(self, cmp_op, a, b, then, els):
        self.cmp_op, self.a, self.b = cmp_op, a, b
        self.then, self.els = then, els

    def render(self):
        return (f"select({self.a.render()} {self.cmp_op} {self.b.render()}, "
                f"{self.then.render()}, {self.els.render()})")

    def is_int(self):
        return self.then.is_int() and self.els.is_int()

    def value(self, env):
        import operator

        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
        if ops[self.cmp_op](self.a.value(env), self.b.value(env)):
            return self.then.value(env)
        return self.els.value(env)


# -- strategies -------------------------------------------------------------------

_small_int = st.integers(-40, 40)
_small_float = st.floats(-20.0, 20.0, allow_nan=False).map(
    lambda v: round(v, 3))


def exprs(max_depth=3):
    base = st.one_of(
        _small_int.map(Lit),
        _small_float.map(Lit),
        st.sampled_from([Var("iv", True), Var("fv", False)]),
    )

    def extend(children):
        num = st.one_of(
            st.builds(Bin, st.sampled_from("+-*/"), children, children),
            st.builds(Call1, st.just("abs"), children),
            st.builds(Select, st.sampled_from(["<", "<=", ">", "==", "!="]),
                      children, children, children, children),
        )
        return num

    return st.recursive(base, extend, max_leaves=12)


@settings(max_examples=250, deadline=None)
@given(expr=exprs(), iv=_small_int, fv=_small_float)
def test_expression_semantics_match_oracle(expr, iv, fv):
    env = {"iv": iv, "fv": fv}
    try:
        expected = expr.value(env)
    except (ZeroDivisionError, ValueError, OverflowError):
        expected = None
    assume(expected is None or abs(expected) < 1e12)

    ret_ty = "int" if expr.is_int() else "float"
    src = (
        f"kernel f(iv: int, fv: float) -> {ret_ty} {{\n"
        f"    return {expr.render()};\n"
        f"}}\n"
    )
    program = compile_program(compile_source(src))
    ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
    if expected is None:
        with pytest.raises(TrapError):
            program.run_kernel("f", ctx, [iv, fv])
        return
    got = program.run_kernel("f", ctx, [iv, fv])
    if ret_ty == "int":
        assert got == expected
    else:
        assert got == pytest.approx(float(expected), rel=1e-9, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(xs=st.lists(_small_float, min_size=1, max_size=30))
def test_reduction_loop_matches_python_sum(xs):
    src = """
    kernel total(x: array<float>) -> float {
        let acc = 0.0;
        for (i in 0..len(x)) {
            acc += x[i];
        }
        return acc;
    }
    """
    from repro.runtime import Array

    program = compile_program(compile_source(src))
    ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
    got = program.run_kernel("total", ctx,
                             [Array.from_list([float(v) for v in xs], "float")])
    expected = 0.0
    for v in xs:
        expected += float(v)
    assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(xs=st.lists(_small_float, min_size=1, max_size=30))
def test_builtin_sort_matches_python_sorted(xs):
    from repro.runtime import Array

    src = "kernel s(x: array<float>) { sort(x); }"
    program = compile_program(compile_source(src))
    arr = Array.from_list([float(v) for v in xs], "float")
    ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
    program.run_kernel("s", ctx, [arr])
    assert arr.data == sorted(float(v) for v in xs)
