"""Denominator semantics of the resilience lanes: system_error samples
are excluded from every metric, degraded samples count for pass@k and
build@k but carry no performance evidence."""

import pytest

from repro.metrics import (
    BUILT_STATUSES,
    CORRECT_STATUSES,
    INFRA_STATUSES,
    judged,
    prompt_build_at_k,
    prompt_pass_at_k,
    prompt_speedup_at_k,
)


class TestJudged:
    def test_drops_only_infra_statuses(self):
        statuses = ["correct", "system_error", "wrong_answer", "degraded"]
        assert judged(statuses) == ["correct", "wrong_answer", "degraded"]

    def test_status_sets_are_consistent(self):
        assert "degraded" in CORRECT_STATUSES
        assert "degraded" in BUILT_STATUSES
        assert INFRA_STATUSES == {"system_error", "quarantined"}
        assert not INFRA_STATUSES & (CORRECT_STATUSES | BUILT_STATUSES)

    def test_quarantined_drops_like_system_error(self):
        statuses = ["correct", "quarantined", "wrong_answer"]
        assert judged(statuses) == ["correct", "wrong_answer"]
        assert prompt_pass_at_k(statuses, 1) == 0.5


class TestPassAtKExclusion:
    def test_system_error_does_not_depress_pass_at_1(self):
        # judged pool: 1 correct of 2 -> 0.5, regardless of infra noise
        with_infra = prompt_pass_at_k(
            ["correct", "wrong_answer", "system_error", "system_error"], 1)
        without = prompt_pass_at_k(["correct", "wrong_answer"], 1)
        assert with_infra == without == 0.5

    def test_exclusion_shrinking_pool_below_k_clamps(self):
        # 4 raw samples, 1 judged: k=4 is the caller's honest k, the
        # infra losses clamp it to the single judged sample
        statuses = ["correct"] + ["system_error"] * 3
        assert prompt_pass_at_k(statuses, 4) == 1.0

    def test_all_infra_contributes_zero(self):
        assert prompt_pass_at_k(["system_error"] * 3, 2) == 0.0

    def test_raw_pool_smaller_than_k_still_raises(self):
        with pytest.raises(ValueError):
            prompt_pass_at_k(["correct", "wrong_answer"], 3)

    def test_degraded_counts_as_correct(self):
        assert prompt_pass_at_k(["degraded", "wrong_answer"], 1) == 0.5

    def test_degraded_counts_as_built(self):
        assert prompt_build_at_k(["degraded", "build_error"], 1) == 0.5
        assert prompt_build_at_k(["system_error", "degraded"], 1) == 1.0


class TestSpeedupExclusion:
    def test_empty_judged_pool_is_zero(self):
        # every sample dropped as system_error/degraded by the caller
        assert prompt_speedup_at_k(8.0, [], 4) == 0.0

    def test_k_clamped_to_remaining_pool(self):
        # one judged sample left; k=4 must not raise
        assert prompt_speedup_at_k(8.0, [2.0], 4) == 4.0

    def test_failures_still_count_as_zero_speedup(self):
        # a judged failure (None time) stays in the pool at 0 speedup
        assert prompt_speedup_at_k(8.0, [None, 2.0], 1) == 2.0
