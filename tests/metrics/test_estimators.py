"""Exactness and property tests for the Eq. 4-7 estimators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    brute_force_expected_max,
    brute_force_pass_at_k,
    expected_max_of_k,
    pass_at_k,
)


class TestPassAtKExact:
    def test_all_correct(self):
        assert pass_at_k(10, 10, 1) == 1.0

    def test_none_correct(self):
        assert pass_at_k(10, 0, 5) == 0.0

    def test_k_equals_n(self):
        # drawing everything: pass iff any correct
        assert pass_at_k(5, 1, 5) == 1.0

    def test_single_sample(self):
        assert pass_at_k(1, 1, 1) == 1.0
        assert pass_at_k(1, 0, 1) == 0.0

    def test_known_value(self):
        # N=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6
        assert pass_at_k(4, 2, 2) == pytest.approx(1 - 1 / 6)

    def test_monotone_in_k(self):
        vals = [pass_at_k(20, 5, k) for k in range(1, 21)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_monotone_in_c(self):
        vals = [pass_at_k(20, c, 5) for c in range(0, 21)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            pass_at_k(3, 1, 4)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            pass_at_k(3, 4, 1)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError):
            pass_at_k(3, 1, 0)


@settings(max_examples=150, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=9),
    data=st.data(),
)
def test_pass_at_k_matches_brute_force(outcomes, data):
    k = data.draw(st.integers(1, len(outcomes)))
    exact = pass_at_k(len(outcomes), sum(outcomes), k)
    brute = brute_force_pass_at_k(outcomes, k)
    assert exact == pytest.approx(brute)


class TestExpectedMax:
    def test_k_equals_n_is_max(self):
        vals = [3.0, 1.0, 7.0, 2.0]
        assert expected_max_of_k(vals, 4) == 7.0

    def test_k1_is_mean(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert expected_max_of_k(vals, 1) == pytest.approx(2.5)

    def test_constant_values(self):
        assert expected_max_of_k([5.0] * 6, 3) == pytest.approx(5.0)

    def test_known_small_case(self):
        # values {0, 1}, k=1 -> 0.5; the speedup-of-failures floor
        assert expected_max_of_k([0.0, 1.0], 1) == pytest.approx(0.5)
        assert expected_max_of_k([0.0, 1.0], 2) == pytest.approx(1.0)

    def test_order_invariance(self):
        a = expected_max_of_k([9.0, 1.0, 5.0, 3.0], 2)
        b = expected_max_of_k([1.0, 3.0, 5.0, 9.0], 2)
        assert a == pytest.approx(b)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            expected_max_of_k([1.0], 2)


@settings(max_examples=150, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=8,
    ),
    data=st.data(),
)
def test_expected_max_matches_brute_force(values, data):
    k = data.draw(st.integers(1, len(values)))
    exact = expected_max_of_k(values, k)
    brute = brute_force_expected_max(values, k)
    assert exact == pytest.approx(brute, rel=1e-9, abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=3, max_size=8,
    ),
)
def test_expected_max_monotone_in_k(values):
    prev = -math.inf
    for k in range(1, len(values) + 1):
        cur = expected_max_of_k(values, k)
        assert cur >= prev - 1e-12
        prev = cur


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=8,
    ),
    data=st.data(),
)
def test_expected_max_bounded_by_extremes(values, data):
    k = data.draw(st.integers(1, len(values)))
    v = expected_max_of_k(values, k)
    assert min(values) - 1e-12 <= v <= max(values) + 1e-12
