"""Tests for the benchmark-level pass@k / build@k / speedup / efficiency."""

import pytest

from repro.metrics import (
    benchmark_build_at_k,
    benchmark_efficiency_at_k,
    benchmark_pass_at_k,
    benchmark_speedup_at_k,
    pass_at_k_curve,
    prompt_build_at_k,
    prompt_pass_at_k,
    prompt_speedup_at_k,
    sample_speedup,
)


class TestPromptLevel:
    def test_prompt_pass(self):
        assert prompt_pass_at_k(["correct", "wrong_answer"], 1) == 0.5

    def test_build_counts_all_runnable_statuses(self):
        statuses = ["correct", "wrong_answer", "runtime_error", "timeout",
                    "not_parallel", "build_error"]
        # 5 of 6 built
        assert prompt_build_at_k(statuses, 1) == pytest.approx(5 / 6)

    def test_build_geq_pass(self):
        statuses = ["correct", "build_error", "wrong_answer", "correct"]
        for k in (1, 2, 3):
            assert (prompt_build_at_k(statuses, k)
                    >= prompt_pass_at_k(statuses, k))


class TestBenchmarkLevel:
    def test_average_over_prompts(self):
        per_prompt = [["correct"] * 4, ["wrong_answer"] * 4]
        assert benchmark_pass_at_k(per_prompt, 1) == 0.5

    def test_curve_monotone(self):
        per_prompt = [
            ["correct", "wrong_answer", "build_error", "correct"],
            ["wrong_answer"] * 4,
        ]
        curve = pass_at_k_curve(per_prompt, [1, 2, 4])
        assert curve[1] <= curve[2] <= curve[4]

    def test_build_at_k(self):
        per_prompt = [["build_error"] * 3, ["correct"] * 3]
        assert benchmark_build_at_k(per_prompt, 1) == 0.5


class TestSpeedup:
    def test_sample_speedup_basic(self):
        assert sample_speedup(10.0, 5.0) == 2.0

    def test_failure_is_zero(self):
        assert sample_speedup(10.0, None) == 0.0
        assert sample_speedup(10.0, 0.0) == 0.0

    def test_prompt_speedup_expected_best(self):
        # two samples: one failed, one 4x; k=1 expects the mean
        v = prompt_speedup_at_k(8.0, [None, 2.0], 1)
        assert v == pytest.approx((0.0 + 4.0) / 2)
        assert prompt_speedup_at_k(8.0, [None, 2.0], 2) == pytest.approx(4.0)

    def test_benchmark_speedup(self):
        entries = [
            {"baseline": 10.0, "times": [5.0], "n": 2},
            {"baseline": 10.0, "times": [1.0], "n": 2},
        ]
        assert benchmark_speedup_at_k(entries, 1) == pytest.approx(6.0)

    def test_benchmark_efficiency_divides_by_n(self):
        entries = [
            {"baseline": 10.0, "times": [5.0], "n": 2},   # 2x on 2 -> 1.0
            {"baseline": 10.0, "times": [5.0], "n": 8},   # 2x on 8 -> 0.25
        ]
        assert benchmark_efficiency_at_k(entries, 1) == pytest.approx(0.625)

    def test_efficiency_skips_zero_n(self):
        entries = [{"baseline": 1.0, "times": [1.0], "n": 0}]
        assert benchmark_efficiency_at_k(entries, 1) == 0.0
