"""Unit tests for the solution-bank builders (shapes -> sources)."""

import pytest

from repro.bench import all_problems
from repro.models.solutions.builders import (
    QUALITY_GOOD,
    QUALITY_POOR,
    build_variants,
    root_only_local,
)


def problem(name):
    return next(p for p in all_problems() if p.name == name)


class TestMapShapes:
    def test_openmp_map_has_static_and_dynamic(self):
        names = {v.name for v in build_variants(problem("relu"), "openmp")}
        assert {"omp-static", "omp-dynamic"} <= names

    def test_mpi_map_shadows_and_reduces(self):
        good = build_variants(problem("relu"), "mpi")[0]
        assert "x_part" in good.source
        assert 'mpi_allreduce_array(x_part, "sum")' in good.source

    def test_mpi_map_multiple_outputs(self):
        # dft writes out_re and out_im: both need shadows
        good = build_variants(problem("dft"), "mpi")[0]
        assert "out_re_part" in good.source
        assert "out_im_part" in good.source

    def test_hybrid_map_has_pragmas(self):
        for v in build_variants(problem("relu"), "mpi+omp"):
            assert "pragma omp" in v.source
            assert "mpi_" in v.source

    def test_gpu_map_guards_bounds(self):
        good = build_variants(problem("relu"), "cuda")[0]
        assert "if (i < len(x))" in good.source

    def test_map2d_gpu_flattens(self):
        good = build_variants(problem("gemm"), "cuda")[0]
        assert "gid / c_total" in good.source
        assert "gid % c_total" in good.source


class TestReduceShapes:
    def test_openmp_reduce_variants_ordered_by_quality(self):
        vs = build_variants(problem("sum_of_elements"), "openmp")
        by_name = {v.name: v.quality for v in vs}
        assert by_name["omp-reduction"] == QUALITY_GOOD
        assert by_name["omp-critical"] < by_name["omp-atomic"] \
            < by_name["omp-reduction"]

    def test_min_reduce_has_no_atomic_variant(self):
        names = {v.name for v in build_variants(problem("smallest_element"),
                                                "openmp")}
        assert "omp-atomic" not in names  # pragma atomic can't do min

    def test_gpu_reduce_uses_matching_atomic(self):
        src = build_variants(problem("smallest_element"), "cuda")[0].source
        assert "atomic_min(result, 0," in src
        src = build_variants(problem("max_adjacent_diff"), "cuda")[0].source
        assert "atomic_max(result, 0," in src

    def test_helper_contrib_kernels_included(self):
        src = build_variants(problem("closest_pair_distance"), "kokkos")[0].source
        assert "kernel closest_pair_distance_contrib(" in src


class TestScatterShapes:
    def test_openmp_histogram_atomic_and_critical(self):
        names = {v.name for v in build_variants(problem("hist_mod_k"),
                                                "openmp")}
        assert {"omp-atomic", "omp-critical"} <= names

    def test_kokkos_histogram_uses_atomic_builtin(self):
        src = build_variants(problem("hist_mod_k"), "kokkos")[0].source
        assert "atomic_add(h," in src

    def test_mpi_scatter_reduces_partials(self):
        src = build_variants(problem("sparse_axpy"), "mpi")[0].source
        assert "y_part" in src and "mpi_allreduce_array" in src

    def test_spmv_transpose_inner_form(self):
        src = build_variants(problem("spmv_transpose"), "cuda")[0].source
        assert "atomic_add(y, colidx[k]" in src.replace("bin", "colidx[k]") \
            or "atomic_add(y," in src


class TestScanShapes:
    def test_openmp_scan_has_blocked_and_naive(self):
        names = {v.name for v in build_variants(problem("prefix_sum"),
                                                "openmp")}
        assert {"omp-blocked-scan", "omp-naive-quadratic"} <= names

    def test_inplace_scan_has_no_blocked_variant(self):
        names = {v.name for v in build_variants(problem("partial_minimums"),
                                                "openmp")}
        assert "omp-blocked-scan" not in names
        assert "omp-naive-quadratic" in names

    def test_kokkos_scan_uses_builtin(self):
        src = build_variants(problem("prefix_sum"), "kokkos")[0].source
        assert "parallel_scan_inclusive" in src

    def test_exclusive_scan_uses_exclusive_builtin(self):
        src = build_variants(problem("exclusive_prefix_sum"), "kokkos")[0].source
        assert "parallel_scan_exclusive" in src

    def test_inplace_gpu_scan_is_thread0_only(self):
        vs = build_variants(problem("partial_minimums"), "cuda")
        assert [v.name for v in vs] == ["gpu-thread0-serial"]


class TestRootOnly:
    def test_root_only_wraps_in_local_helper(self):
        p = problem("sum_of_elements")
        v = root_only_local(p, "mpi", "let acc = 0.0;\nreturn acc;")
        assert "kernel sum_of_elements_local(" in v.source
        assert "mpi_barrier();" in v.source
        assert v.quality == QUALITY_POOR

    def test_root_only_unit_kernel(self):
        p = problem("relu")
        v = root_only_local(p, "mpi", "for (i in 0..len(x)) { x[i] = 0.0; }")
        assert "relu_local(x);" in v.source
