"""The correlated-solvability gate: pass@1 is preserved while pass@k
plateaus near PLATEAU * pass@1 (the paper's Fig. 4 behaviour, where real
models gain only ~1.45x from 20 attempts because completions are highly
correlated)."""

import numpy as np

from repro.bench import PCGBench
from repro.models import load_model
from repro.models.llm import PLATEAU, POOL


def test_pool_solvability_caps_diversity():
    """Across many prompts, the fraction of pools containing any correct
    candidate must track min(1, PLATEAU * p), not 1 - (1-p)^POOL."""
    bench = PCGBench(models=["openmp", "mpi"])
    llm = load_model("Phind-CodeLlama-V2")
    with_correct = 0
    expected = 0.0
    n = 0
    for prompt in bench.prompts:
        pool, _ = llm._pool(prompt)
        p = llm.profile.p_correct(prompt.model, prompt.problem.ptype)
        with_correct += any(s.intended == "correct" for s in pool)
        expected += min(0.98, PLATEAU * p)
        n += 1
    measured = with_correct / n
    target = expected / n
    iid = np.mean([
        1 - (1 - llm.profile.p_correct(pr.model, pr.problem.ptype)) ** POOL
        for pr in bench.prompts
    ])
    # the gate keeps solvability near the plateau target ...
    assert abs(measured - target) < 0.08
    # ... far below what independent candidates would give
    assert measured < iid - 0.15


def test_pass1_expectation_preserved():
    """The gate must not change the expected per-candidate correctness."""
    bench = PCGBench(models=["openmp"])
    llm = load_model("GPT-3.5")
    total_correct = 0
    total = 0
    expected = 0.0
    for prompt in bench.prompts:
        pool, _ = llm._pool(prompt)
        total_correct += sum(s.intended == "correct" for s in pool)
        total += len(pool)
        expected += llm.profile.p_correct(prompt.model, prompt.problem.ptype)
    # prompt-level gating raises the variance of the mean (one draw per
    # prompt decides the whole pool), so the tolerance is ~2.5 sigma
    assert abs(total_correct / total - expected / len(bench.prompts)) < 0.11
