"""Invariants linking a sample's *intended* kind to its harness verdict.

These pin the contract between the simulated LLMs and the harness:
candidates drawn from the solution bank must always pass, sequential
fallbacks must always be caught by the usage check, and injected bugs
must overwhelmingly fail — with correctness always decided by execution.
"""

import pytest

from repro.bench import PCGBench
from repro.harness import Runner
from repro.models import load_model

BENCH = PCGBench(problem_types=["reduce", "stencil", "histogram"],
                 models=["serial", "openmp", "mpi", "cuda"])
RUNNER = Runner(correctness_trials=1)


@pytest.fixture(scope="module")
def labelled_results():
    llm = load_model("CodeLlama-13B")  # mid skill: all three kinds appear
    rows = []
    for prompt in BENCH.prompts:
        for sample in llm.generate(prompt, 6, temperature=0.8, seed=19):
            res = RUNNER.evaluate_sample(sample.source, prompt)
            rows.append((prompt, sample.intended, res.status))
    return rows


def test_correct_candidates_always_pass(labelled_results):
    bad = [(p.uid, s) for p, i, s in labelled_results
           if i == "correct" and s != "correct"]
    assert not bad, bad[:5]


def test_fallbacks_always_not_parallel(labelled_results):
    kinds = {s for p, i, s in labelled_results if i == "fallback"}
    assert kinds <= {"not_parallel"}, kinds


def test_bugs_mostly_fail(labelled_results):
    bug_rows = [(p, s) for p, i, s in labelled_results if i == "bug"]
    assert bug_rows, "expected some bug candidates at this skill level"
    failed = sum(s != "correct" for _, s in bug_rows)
    assert failed / len(bug_rows) > 0.8

    # and the failures span multiple detection mechanisms
    kinds = {s for _, s in bug_rows if s != "correct"}
    assert len(kinds) >= 3, kinds


def test_all_three_kinds_materialise(labelled_results):
    kinds = {i for _, i, _ in labelled_results}
    assert kinds == {"correct", "fallback", "bug"}
