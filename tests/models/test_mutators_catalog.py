"""Per-mutator tests: each bug injector must (a) apply to at least one
bank source for its execution model and (b) produce the failure mode it
advertises when run through the harness."""

import numpy as np
import pytest

from repro.bench import all_problems, render_prompt
from repro.harness import Runner
from repro.models.mutate import _MUTATORS
from repro.models.solutions import variants_for

# screen off: this catalogue asserts on *dynamic* outcomes of mutants
RUNNER = Runner(correctness_trials=1, static_screen=False)
RNG = lambda: np.random.default_rng(7)  # noqa: E731


def src_of(problem_name, model, variant_idx=0):
    p = next(q for q in all_problems() if q.name == problem_name)
    return p, variants_for(p, model)[variant_idx].source


def evaluate(problem, model, source):
    return RUNNER.evaluate_sample(source, render_prompt(problem, model))


class TestBuildBreakers:
    @pytest.mark.parametrize("name", [
        "syntax_drop_semicolon", "syntax_drop_brace", "type_confusion",
        "unknown_api",
    ])
    def test_build_breaking_mutations(self, name):
        p, src = src_of("sum_of_elements", "serial")
        mutated = _MUTATORS[name](src, RNG())
        assert mutated is not None and mutated != src
        res = evaluate(p, "serial", mutated)
        assert res.status == "build_error", (name, res.detail)

    def test_undeclared_name(self):
        p, src = src_of("sum_of_elements", "serial")
        mutated = _MUTATORS["undeclared_name"](src, RNG())
        res = evaluate(p, "serial", mutated)
        assert res.status == "build_error"


class TestSyncBugs:
    def test_drop_reduction_causes_race(self):
        p, src = src_of("sum_of_elements", "openmp")  # omp-reduction variant
        mutated = _MUTATORS["drop_reduction_clause"](src, RNG())
        assert mutated is not None
        res = evaluate(p, "openmp", mutated)
        assert res.status == "runtime_error"
        assert "race" in res.detail.lower()

    def test_drop_atomic_pragma_causes_race(self):
        p = next(q for q in all_problems() if q.name == "hist_mod_k")
        src = next(v for v in variants_for(p, "openmp")
                   if v.name == "omp-atomic").source
        mutated = _MUTATORS["drop_atomic_pragma"](src, RNG())
        res = evaluate(p, "openmp", mutated)
        assert res.status == "runtime_error"

    def test_atomic_to_plain_races_on_gpu(self):
        p = next(q for q in all_problems() if q.name == "hist_mod_k")
        src = next(v for v in variants_for(p, "cuda")
                   if v.name == "gpu-atomic").source
        mutated = _MUTATORS["atomic_to_plain"](src, RNG())
        res = evaluate(p, "cuda", mutated)
        assert res.status == "runtime_error"

    def test_inplace_stencil_races(self):
        p, src = src_of("jacobi_1d", "openmp")
        mutated = _MUTATORS["inplace_stencil"](src, RNG())
        assert mutated is not None
        res = evaluate(p, "openmp", mutated)
        assert res.status in ("runtime_error", "wrong_answer")


class TestLogicBugs:
    def test_off_by_one_wrong_answer(self):
        p, src = src_of("sum_of_elements", "serial")
        mutated = _MUTATORS["off_by_one_start"](src, RNG())
        res = evaluate(p, "serial", mutated)
        assert res.status == "wrong_answer"

    def test_flip_operator_usually_wrong(self):
        # axpy has +, * and comparison material for the operator flipper
        p, src = src_of("axpy", "serial")
        statuses = set()
        rng = np.random.default_rng(3)
        for _ in range(6):
            mutated = _MUTATORS["flip_operator"](src, rng)
            assert mutated is not None
            statuses.add(evaluate(p, "serial", mutated).status)
        assert statuses & {"wrong_answer", "build_error", "runtime_error"}

    def test_drop_gpu_guard_traps(self):
        # choose a problem whose array length is not a multiple of the
        # block size so the unguarded tail actually goes out of bounds
        p = next(q for q in all_problems() if q.name == "csr_row_sums")
        src = next(v for v in variants_for(p, "cuda")
                   if "thread-per" in v.name or "gpu-atomic" in v.name).source
        mutated = _MUTATORS["drop_gpu_guard"](src, RNG())
        assert mutated is not None
        res = evaluate(p, "cuda", mutated)
        assert res.status in ("runtime_error", "wrong_answer")

    def test_wrong_identity(self):
        # closest-pair distances are strictly positive, so a zero identity
        # in the min fold is always wrong
        p, src = src_of("closest_pair_distance", "openmp")
        mutated = _MUTATORS["wrong_identity"](src, RNG())
        assert mutated is not None
        res = evaluate(p, "openmp", mutated)
        assert res.status == "wrong_answer"


class TestMPIBugs:
    def test_rank_skew_wrong_answer(self):
        p, src = src_of("sum_of_elements", "mpi")
        mutated = _MUTATORS["mpi_rank_skew"](src, RNG())
        assert mutated is not None
        res = evaluate(p, "mpi", mutated)
        assert res.status == "wrong_answer"

    def test_wrong_root(self):
        # a handwritten reduce-to-root solution: moving the root away from
        # rank 0 leaves rank 0 with the identity -> wrong answer
        p = next(q for q in all_problems() if q.name == "sum_of_elements")
        src = """
        kernel sum_of_elements(x: array<float>) -> float {
            let rank = mpi_rank();
            let size = mpi_size();
            let chunk = (len(x) + size - 1) / size;
            let local = 0.0;
            for (i in rank * chunk..min((rank + 1) * chunk, len(x))) {
                local += x[i];
            }
            return mpi_reduce_float(local, "sum", 0);
        }
        """
        assert evaluate(p, "mpi", src).status == "correct"
        mutated = _MUTATORS["mpi_wrong_root"](src, RNG())
        assert mutated is not None and ", 1)" in mutated
        res = evaluate(p, "mpi", mutated)
        assert res.status == "wrong_answer"

    def test_collective_skew_detected(self):
        p, src = src_of("sum_of_elements", "mpi")
        mutated = _MUTATORS["mpi_collective_skew"](src, RNG())
        res = evaluate(p, "mpi", mutated)
        assert res.status == "runtime_error"

    def test_recv_deadlock_detected(self):
        p, src = src_of("sum_of_elements", "mpi")
        mutated = _MUTATORS["mpi_recv_deadlock"](src, RNG())
        res = evaluate(p, "mpi", mutated)
        assert res.status == "runtime_error"
        assert "deadlock" in res.detail.lower()


class TestPathological:
    def test_runaway_loop_times_out(self):
        p, src = src_of("sum_of_elements", "serial")
        mutated = _MUTATORS["runaway_loop"](src, RNG())
        res = evaluate(p, "serial", mutated)
        assert res.status == "timeout"
