"""Tests for the simulated LLMs: determinism, temperature behaviour,
calibration direction, and the bug injectors."""

import numpy as np
import pytest

from repro.bench import all_problems, render_prompt
from repro.harness import Runner
from repro.models import MODEL_ORDER, load_model, profile
from repro.models.mutate import apply_bug, mutator_names
from repro.models.solutions import variants_for


def prompt_for(name, model):
    p = next(q for q in all_problems() if q.name == name)
    return render_prompt(p, model)


class TestDeterminism:
    def test_same_seed_same_samples(self):
        llm = load_model("GPT-3.5")
        prompt = prompt_for("relu", "openmp")
        a = llm.generate(prompt, 5, temperature=0.2, seed=7)
        b = llm.generate(prompt, 5, temperature=0.2, seed=7)
        assert [s.source for s in a] == [s.source for s in b]

    def test_different_seed_can_differ(self):
        llm = load_model("CodeLlama-7B")
        prompt = prompt_for("relu", "openmp")
        a = llm.generate(prompt, 20, temperature=0.8, seed=1)
        b = llm.generate(prompt, 20, temperature=0.8, seed=2)
        assert [s.source for s in a] != [s.source for s in b]

    def test_pool_fixed_per_prompt(self):
        llm = load_model("GPT-4")
        prompt = prompt_for("relu", "openmp")
        pool1 = {s.source for s in llm.generate(prompt, 50, 0.8, seed=1)}
        pool2 = {s.source for s in llm.generate(prompt, 50, 0.8, seed=99)}
        # both draws come from the same finite latent pool
        assert pool1 | pool2 <= pool1.union(pool2)
        assert len(pool1 | pool2) <= 12


class TestTemperature:
    def test_low_temperature_concentrates(self):
        llm = load_model("GPT-4")  # high confidence
        prompt = prompt_for("prefix_sum", "openmp")
        cold = llm.generate(prompt, 20, temperature=0.2, seed=3)
        hot = llm.generate(prompt, 20, temperature=0.8, seed=3)
        assert len({s.source for s in cold}) <= len({s.source for s in hot})

    def test_confident_model_repeats_itself(self):
        # the paper's §8.1 observation about CodeLlama-34B / GPT-4
        llm = load_model("GPT-4")
        prompts = [render_prompt(p, "openmp") for p in all_problems()[:12]]
        dominant = 0
        for pr in prompts:
            samples = llm.generate(pr, 20, temperature=0.2, seed=5)
            top = max(
                {s.source for s in samples},
                key=lambda src: sum(x.source == src for x in samples),
            )
            share = sum(s.source == top for s in samples) / 20
            dominant += share
        assert dominant / len(prompts) > 0.75


class TestCalibrationDirection:
    def test_profiles_exist_for_all_models(self):
        for name in MODEL_ORDER:
            assert profile(name).serial_skill > 0

    def test_serial_beats_parallel_probability(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            for pt in ("transform", "sparse_la"):
                serial_p = prof.p_correct("serial", pt)
                for m in ("openmp", "mpi", "cuda"):
                    assert prof.p_correct(m, pt) <= serial_p

    def test_transform_easier_than_sparse(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            assert (prof.p_correct("openmp", "transform")
                    > prof.p_correct("openmp", "sparse_la"))

    def test_mpi_hardest_parallel_model(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            assert (prof.p_correct("mpi", "transform")
                    <= prof.p_correct("openmp", "transform"))


class TestMutators:
    @pytest.fixture
    def omp_source(self):
        p = next(q for q in all_problems() if q.name == "sum_of_elements")
        return variants_for(p, "openmp")[0].source

    def test_apply_bug_changes_source(self, omp_source):
        rng = np.random.default_rng(0)
        mutated = apply_bug(omp_source, "openmp", rng)
        assert mutated is not None
        assert mutated != omp_source

    def test_mutator_catalogue_per_model(self):
        assert "drop_reduction_clause" in mutator_names("openmp")
        assert "mpi_recv_deadlock" in mutator_names("mpi")
        assert "drop_gpu_guard" in mutator_names("cuda")
        assert "drop_reduction_clause" not in mutator_names("cuda")

    def test_mutations_fail_the_harness(self, omp_source):
        """Most injected bugs must actually fail; none may crash the
        harness itself."""
        p = next(q for q in all_problems() if q.name == "sum_of_elements")
        prompt = render_prompt(p, "openmp")
        runner = Runner(correctness_trials=1)
        rng = np.random.default_rng(123)
        outcomes = []
        for _ in range(20):
            mutated = apply_bug(omp_source, "openmp", rng)
            res = runner.evaluate_sample(mutated, prompt)
            outcomes.append(res.status)
        failed = sum(s != "correct" for s in outcomes)
        assert failed >= 15  # a rare benign mutation is acceptable

    def test_fallback_fails_usage_check(self):
        llm = load_model("CodeLlama-7B")
        p = next(q for q in all_problems() if q.name == "relu")
        prompt = render_prompt(p, "openmp")
        runner = Runner(correctness_trials=1)
        # find a fallback sample in the pool
        fallbacks = [
            s for s in llm.generate(prompt, 60, temperature=0.8, seed=11)
            if s.intended == "fallback"
        ]
        if not fallbacks:
            pytest.skip("no fallback candidate drawn for this prompt")
        res = runner.evaluate_sample(fallbacks[0].source, prompt)
        assert res.status == "not_parallel"

    def test_gpu_fallback_compiles_with_result_buffer(self):
        llm = load_model("CodeLlama-7B")
        p = next(q for q in all_problems() if q.name == "sum_of_elements")
        prompt = render_prompt(p, "cuda")
        runner = Runner(correctness_trials=1)
        fallbacks = [
            s for s in llm.generate(prompt, 80, temperature=0.8, seed=2)
            if s.intended == "fallback"
        ]
        if not fallbacks:
            pytest.skip("no fallback candidate drawn for this prompt")
        res = runner.evaluate_sample(fallbacks[0].source, prompt)
        # builds and runs, but is caught by the usage check
        assert res.status == "not_parallel"
