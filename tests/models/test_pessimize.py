"""Tests for the correct-but-slow pessimisation layer (paper §8 RQ3)."""

import pytest

from repro.bench import all_problems, render_prompt
from repro.harness import Runner, compile_sample
from repro.models import load_model, profile
from repro.models.mutate import pessimize
from repro.models.solutions import variants_for

RUNNER = Runner(correctness_trials=1)


def problem(name):
    return next(p for p in all_problems() if p.name == name)


class TestPessimize:
    def test_still_correct(self):
        p = problem("axpy")
        src = pessimize(variants_for(p, "openmp")[0].source, p)
        res = RUNNER.evaluate_sample(src, render_prompt(p, "openmp"))
        assert res.status == "correct"

    def test_slower_at_scale(self):
        p = problem("axpy")
        prompt = render_prompt(p, "openmp")
        clean = variants_for(p, "openmp")[0].source
        slow = pessimize(clean, p, repeats=2)
        t_clean = RUNNER.evaluate_sample(clean, prompt, with_timing=True)
        t_slow = RUNNER.evaluate_sample(slow, prompt, with_timing=True)
        assert t_slow.times[32] > 3 * t_clean.times[32]

    def test_2d_problems_supported(self):
        p = problem("jacobi_2d")
        src = pessimize(variants_for(p, "openmp")[0].source, p)
        assert src is not None and "warmup_pass" in src
        res = RUNNER.evaluate_sample(src, render_prompt(p, "openmp"))
        assert res.status == "correct"

    def test_int_array_problems_supported(self):
        p = problem("hist_alphabet")
        src = pessimize(variants_for(p, "openmp")[0].source, p)
        res = RUNNER.evaluate_sample(src, render_prompt(p, "openmp"))
        assert res.status == "correct"

    def test_mpi_variant_survives(self):
        p = problem("sum_of_elements")
        src = pessimize(variants_for(p, "mpi")[0].source, p)
        res = RUNNER.evaluate_sample(src, render_prompt(p, "mpi"))
        assert res.status == "correct"

    def test_all_problems_pessimizable(self):
        for p in all_problems():
            src = pessimize(variants_for(p, "serial")[0].source, p)
            assert src is not None, p.name


class TestSlopDistribution:
    def test_discipline_ordering(self):
        """Low variant-bias models pad more of their correct completions."""
        counts = {}
        for name in ("GPT-3.5", "GPT-4", "Phind-CodeLlama-V2"):
            llm = load_model(name)
            slop = total = 0
            for p in all_problems()[:25]:
                pool, _ = llm._pool(render_prompt(p, "openmp"))
                for s in pool:
                    if s.intended == "correct":
                        total += 1
                        slop += "warmup_pass" in s.source
            counts[name] = slop / max(total, 1)
        assert counts["GPT-4"] < counts["GPT-3.5"] < \
            counts["Phind-CodeLlama-V2"]

    def test_phind_disciplined_on_mpi(self):
        llm = load_model("Phind-CodeLlama-V2")
        slop = total = 0
        for p in all_problems()[:25]:
            pool, _ = llm._pool(render_prompt(p, "mpi"))
            for s in pool:
                if s.intended == "correct":
                    total += 1
                    slop += "warmup_pass" in s.source
        assert total > 0
        assert slop / total < 0.05  # mpi bias 4.0 -> essentially no slop

    def test_gpu_pools_never_pessimized(self):
        llm = load_model("CodeLlama-7B")  # lowest discipline
        for p in all_problems()[:25]:
            pool, _ = llm._pool(render_prompt(p, "cuda"))
            for s in pool:
                assert "warmup_pass" not in s.source
