"""Tests for the solution bank: every variant must be a fully correct
solution under its execution model (the cornerstone invariant — the
simulated LLMs assume the bank is a pool of correct programs)."""

import pytest

from repro.bench import EXECUTION_MODELS, all_problems, render_prompt
from repro.harness import Runner
from repro.models.solutions import bank, variants_for

_PROBLEMS = all_problems()
_RUNNER = Runner(correctness_trials=1)


class TestBankShape:
    def test_full_coverage(self):
        table = bank()
        assert len(table) == 60 * 7
        for key, variants in table.items():
            assert variants, f"no variants for {key}"

    def test_variant_qualities_in_range(self):
        for variants in bank().values():
            for v in variants:
                assert 0.0 < v.quality <= 1.0

    def test_serial_entries_single_good_variant(self):
        for p in _PROBLEMS:
            vs = variants_for(p, "serial")
            assert vs[0].quality == 1.0

    def test_parallel_entries_use_their_model(self):
        from repro.harness import uses_parallel_model

        for (name, model), variants in bank().items():
            for v in variants:
                assert uses_parallel_model(v.source, model), (
                    f"{name}/{model}/{v.name} fails the usage check"
                )


# One exhaustive correctness sweep per execution model keeps failures
# attributable; the full cross-product is ~700 runs and stays fast.
@pytest.mark.parametrize("model", EXECUTION_MODELS)
def test_all_variants_correct(model):
    failures = []
    for problem in _PROBLEMS:
        prompt = render_prompt(problem, model)
        for v in variants_for(problem, model):
            res = _RUNNER.evaluate_sample(v.source, prompt)
            if res.status != "correct":
                failures.append(
                    f"{problem.name}/{v.name}: {res.status} ({res.detail[:80]})"
                )
    assert not failures, "\n".join(failures)
