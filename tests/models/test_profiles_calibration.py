"""Light calibration guards: the qualitative orderings the reproduction
promises must hold for the *profiles* (full measured-figure assertions
live in benchmarks/)."""

from repro.models import MODEL_ORDER, profile


def mean_parallel_p(name: str) -> float:
    prof = profile(name)
    ptypes = prof.ptype_mult
    models = ("openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip")
    vals = [prof.p_correct(m, pt) for m in models for pt in ptypes]
    return sum(vals) / len(vals)


def mean_serial_p(name: str) -> float:
    prof = profile(name)
    vals = [prof.p_correct("serial", pt) for pt in prof.ptype_mult]
    return sum(vals) / len(vals)


class TestOrderings:
    def test_gpt35_leads_parallel(self):
        best = max(MODEL_ORDER, key=mean_parallel_p)
        assert best == "GPT-3.5"

    def test_phind_best_open_model(self):
        open_models = [m for m in MODEL_ORDER if not profile(m).chat_only]
        assert max(open_models, key=mean_parallel_p) == "Phind-CodeLlama-V2"

    def test_cl34b_below_cl13b_parallel(self):
        assert mean_parallel_p("CodeLlama-34B") < mean_parallel_p("CodeLlama-13B")

    def test_confidence_grows_with_size_family(self):
        assert (profile("CodeLlama-34B").confidence
                > profile("CodeLlama-13B").confidence)
        assert profile("GPT-4").confidence > profile("GPT-3.5").confidence

    def test_gpt4_has_highest_perf_bias(self):
        assert max(MODEL_ORDER, key=lambda m: profile(m).perf_bias) == "GPT-4"

    def test_openmp_is_easiest_parallel_model(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            for other in ("kokkos", "mpi", "mpi+omp", "cuda", "hip"):
                assert prof.exec_mult["openmp"] >= prof.exec_mult[other], (
                    name, other)

    def test_mpi_family_is_hardest(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            assert prof.exec_mult["mpi+omp"] <= prof.exec_mult["openmp"]
            assert prof.exec_mult["mpi"] <= prof.exec_mult["cuda"] + 0.05

    def test_open_models_prefer_hip_closed_prefer_cuda(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            if prof.chat_only:
                assert prof.exec_mult["cuda"] >= prof.exec_mult["hip"]
            else:
                assert prof.exec_mult["hip"] >= prof.exec_mult["cuda"]

    def test_probabilities_clamped(self):
        for name in MODEL_ORDER:
            prof = profile(name)
            for m in prof.exec_mult:
                for pt in prof.ptype_mult:
                    assert 0.0 < prof.p_correct(m, pt) <= 0.98
