"""Cross-module integration tests: the full paper pipeline end to end on
small slices, checking the qualitative invariants the figures rely on."""

import numpy as np
import pytest

from repro import PCGBench, Runner, evaluate_model, load_model
from repro.analysis import (
    pass_by_exec_model,
    pass_curve,
    pass_serial_vs_parallel,
    speedup_by_exec_model,
)
from repro.bench import render_prompt, all_problems
from repro.metrics import pass_at_k


class TestSmallPipelines:
    @pytest.fixture(scope="class")
    def run(self):
        bench = PCGBench(problem_types=["transform", "sparse_la"],
                         models=["serial", "openmp", "mpi"])
        return evaluate_model(load_model("GPT-3.5"), bench, num_samples=5,
                              temperature=0.2, seed=31)

    def test_serial_beats_parallel(self, run):
        sp = pass_serial_vs_parallel(run)
        assert sp["serial"] > sp["parallel"]

    def test_openmp_beats_mpi(self, run):
        by_exec = pass_by_exec_model(run)
        assert by_exec["openmp"] >= by_exec["mpi"]

    def test_transform_beats_sparse(self, run):
        from repro.analysis import pass_by_ptype

        by_type = pass_by_ptype(run)
        assert by_type["transform"] > by_type["sparse_la"]

    def test_every_sample_has_a_status(self, run):
        for rec in run.prompts.values():
            assert len(rec.samples) == 5
            assert all(s.status for s in rec.samples)

    def test_determinism_across_identical_calls(self):
        bench = PCGBench(problem_types=["reduce"], models=["openmp"])
        kwargs = dict(num_samples=3, temperature=0.2, seed=77)
        a = evaluate_model(load_model("GPT-4"), bench, **kwargs)
        b = evaluate_model(load_model("GPT-4"), bench, **kwargs)
        assert a.to_json() == b.to_json()


class TestTemperatureConfigurations:
    def test_pass_at_k_grows_and_plateaus(self):
        bench = PCGBench(problem_types=["scan", "histogram"],
                         models=["openmp", "mpi"])
        run = evaluate_model(load_model("Phind-CodeLlama-V2"), bench,
                             num_samples=30, temperature=0.8, seed=41)
        curve = pass_curve(run, ks=(1, 5, 10, 20))
        assert curve[1] <= curve[5] <= curve[10] <= curve[20]
        # finite latent pools make the curve flatten
        assert curve[20] - curve[10] <= curve[5] - curve[1] + 1e-9

    def test_high_temp_lifts_pass_at_20_over_low_temp_pass_at_1(self):
        bench = PCGBench(problem_types=["histogram"], models=["openmp"])
        llm = load_model("CodeLlama-13B")
        cold = evaluate_model(llm, bench, num_samples=6, temperature=0.2,
                              seed=43)
        hot = evaluate_model(llm, bench, num_samples=30, temperature=0.8,
                             seed=43)
        cold1 = pass_curve(cold, ks=(1,))[1]
        hot20 = pass_curve(hot, ks=(20,))[20]
        assert hot20 >= cold1


class TestPerformancePipeline:
    def test_speedups_only_from_correct_samples(self):
        bench = PCGBench(problem_types=["transform"], models=["openmp"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=3,
                             temperature=0.2, with_timing=True, seed=51)
        for rec in run.prompts.values():
            for s in rec.samples:
                if s.status != "correct":
                    assert not s.times
                else:
                    assert s.times

    def test_speedup_headline_positive_for_capable_model(self):
        bench = PCGBench(problem_types=["transform", "reduce"],
                         models=["openmp"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=3,
                             temperature=0.2, with_timing=True, seed=53)
        sp = speedup_by_exec_model(run)
        assert sp["openmp"] > 1.0  # parallel code beats the baseline


class TestEstimatorIntegration:
    def test_pass_at_1_equals_sample_mean(self):
        """The Eq. 4 estimator at k=1 must equal the raw fraction — a
        consistency check between harness bookkeeping and the metric."""
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        run = evaluate_model(load_model("StarCoderBase"), bench,
                             num_samples=8, temperature=0.2, seed=61)
        for rec in run.prompts.values():
            statuses = rec.statuses()
            c = sum(s == "correct" for s in statuses)
            assert pass_at_k(len(statuses), c, 1) == pytest.approx(c / 8)


class TestPaperListing1:
    def test_partial_minimums_prompt_matches_paper(self):
        """The paper's Listing 1 prompt exists verbatim in spirit: same
        problem, same examples, same Kokkos framing."""
        p = next(q for q in all_problems() if q.name == "partial_minimums")
        text = render_prompt(p, "kokkos").text
        assert "minimum value from indices 0 through i" in text
        assert "[8, 6, -1, 7, 3, 4, 4]" in text
        assert "Kokkos has already been initialized" in text
        assert text.rstrip().endswith("kernel partial_minimums(x: array<float>) {")
