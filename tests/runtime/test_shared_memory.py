"""Tests for the OpenMP and Kokkos runtimes: correctness, race detection,
and the parallel time model."""

import numpy as np
import pytest

from repro.lang.errors import DataRaceError
from repro.runtime import dynamic_chunk_time, static_chunk_time

from .helpers import farr, iarr, run_kokkos, run_omp, run_serial


SUM_OMP = """
kernel f(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""


class TestOpenMPCorrectness:
    def test_reduction_sum(self):
        x = farr(range(1000))
        ret, _ = run_omp(SUM_OMP, "f", [x])
        assert ret == sum(range(1000))

    def test_elementwise_map(self):
        x = farr([1, -2, 3, -4])
        run_omp(
            "kernel f(x: array<float>) { pragma omp parallel for "
            "for (i in 0..len(x)) { x[i] = max(x[i], 0.0); } }",
            "f", [x],
        )
        assert x.data == [1.0, 0.0, 3.0, 0.0]

    def test_min_reduction(self):
        x = farr([5, 3, 8, 1, 9])
        ret, _ = run_omp(
            "kernel f(x: array<float>) -> float { let m = 1000000.0; "
            "pragma omp parallel for reduction(min: m) "
            "for (i in 0..len(x)) { m = min(m, x[i]); } return m; }",
            "f", [x],
        )
        assert ret == 1.0

    def test_critical_section_correct(self):
        x = farr(range(100))
        ret, _ = run_omp(
            "kernel f(x: array<float>) -> float { let total = 0.0; "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { pragma omp critical { total += x[i]; } } "
            "return total; }",
            "f", [x],
        )
        assert ret == sum(range(100))

    def test_atomic_scalar_correct(self):
        ret, _ = run_omp(
            "kernel f(x: array<float>) -> float { let total = 0.0; "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { pragma omp atomic total += x[i]; } "
            "return total; }",
            "f", [farr(range(50))],
        )
        assert ret == sum(range(50))

    def test_nested_parallel_runs_serially(self):
        x = farr([0] * 16)
        run_omp(
            "kernel f(x: array<float>) { pragma omp parallel for "
            "for (i in 0..4) { pragma omp parallel for "
            "for (j in 0..4) { x[i * 4 + j] = 1.0; } } }",
            "f", [x],
        )
        assert x.data == [1.0] * 16

    def test_schedule_dynamic_still_correct(self):
        x = farr(range(64))
        ret, _ = run_omp(
            "kernel f(x: array<float>) -> float { let s = 0.0; "
            "pragma omp parallel for reduction(+: s) schedule(dynamic) "
            "for (i in 0..len(x)) { s += x[i]; } return s; }",
            "f", [x],
        )
        assert ret == sum(range(64))


class TestRaceDetection:
    def test_missing_reduction_detected_statically(self):
        src = SUM_OMP.replace(" reduction(+: total)", "")
        with pytest.raises(DataRaceError, match="shared"):
            run_omp(src, "f", [farr(range(10))])

    def test_serial_model_ignores_pragma_no_race(self):
        src = SUM_OMP.replace(" reduction(+: total)", "")
        ret, _ = run_serial(src, "f", [farr(range(10))])
        assert ret == 45.0  # pragma ignored: correct sequentially

    def test_histogram_without_atomic_races(self):
        with pytest.raises(DataRaceError):
            run_omp(
                "kernel f(x: array<int>, h: array<int>) { "
                "pragma omp parallel for "
                "for (i in 0..len(x)) { h[x[i]] += 1; } }",
                "f", [iarr([i % 5 for i in range(200)]), iarr([0] * 5)],
            )

    def test_inplace_stencil_races(self):
        with pytest.raises(DataRaceError):
            run_omp(
                "kernel f(x: array<float>) { pragma omp parallel for "
                "for (i in 1..len(x) - 1) { x[i] = (x[i - 1] + x[i + 1]) / 2.0; } }",
                "f", [farr(range(100))],
            )

    def test_out_of_place_stencil_is_clean(self):
        x, y = farr(range(100)), farr([0] * 100)
        run_omp(
            "kernel f(x: array<float>, y: array<float>) { "
            "pragma omp parallel for "
            "for (i in 1..len(x) - 1) { y[i] = (x[i - 1] + x[i + 1]) / 2.0; } }",
            "f", [x, y],
        )
        assert y.data[1] == 1.0

    def test_prefix_sum_dependence_races(self):
        with pytest.raises(DataRaceError):
            run_omp(
                "kernel f(x: array<float>) { pragma omp parallel for "
                "for (i in 1..len(x)) { x[i] = x[i] + x[i - 1]; } }",
                "f", [farr(range(100))],
            )

    def test_shared_temp_scalar_races(self):
        # classic bug: temp declared outside the loop is shared
        with pytest.raises(DataRaceError):
            run_omp(
                "kernel f(x: array<float>, y: array<float>) { let t = 0.0; "
                "pragma omp parallel for "
                "for (i in 0..len(x)) { t = x[i] * 2.0; y[i] = t; } }",
                "f", [farr(range(10)), farr([0] * 10)],
            )

    def test_private_temp_is_fine(self):
        x, y = farr(range(10)), farr([0] * 10)
        run_omp(
            "kernel f(x: array<float>, y: array<float>) { "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { let t = x[i] * 2.0; y[i] = t; } }",
            "f", [x, y],
        )
        assert y.data == [v * 2.0 for v in x.data]

    def test_atomic_array_update_is_exonerated(self):
        h = iarr([0] * 5)
        run_omp(
            "kernel f(x: array<int>, h: array<int>) { "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { pragma omp atomic h[x[i]] += 1; } }",
            "f", [iarr([i % 5 for i in range(200)]), h],
        )
        assert sum(h.data) == 200

    def test_kokkos_race_detected(self):
        with pytest.raises(DataRaceError):
            run_kokkos(
                "kernel f(x: array<float>) { "
                "parallel_for(len(x) - 1, (i) => { x[i] = x[i + 1]; }); }",
                "f", [farr(range(100))],
            )


class TestKokkosPatterns:
    def test_parallel_for(self):
        x = farr([1, 2, 3, 4])
        run_kokkos(
            "kernel f(x: array<float>) { "
            "parallel_for(len(x), (i) => { x[i] = x[i] * 2.0; }); }",
            "f", [x],
        )
        assert x.data == [2.0, 4.0, 6.0, 8.0]

    def test_parallel_reduce_sum(self):
        ret, _ = run_kokkos(
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(len(x), "sum", (i) => x[i]); }',
            "f", [farr(range(100))],
        )
        assert ret == sum(range(100))

    def test_parallel_reduce_max(self):
        ret, _ = run_kokkos(
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(len(x), "max", (i) => x[i]); }',
            "f", [farr([3, 9, 1])],
        )
        assert ret == 9.0

    def test_parallel_reduce_int_kind_preserved(self):
        ret, _ = run_kokkos(
            'kernel f(x: array<int>) -> int { '
            'return parallel_reduce(len(x), "sum", (i) => select(x[i] > 2, 1, 0)); }',
            "f", [iarr([1, 2, 3, 4, 5])],
        )
        assert ret == 3
        assert isinstance(ret, int)

    def test_scan_inclusive(self):
        x = farr([1, 2, 3, 4])
        out = farr([0] * 4)
        run_kokkos(
            'kernel f(x: array<float>, out: array<float>) { '
            'parallel_scan_inclusive(len(x), "sum", (i) => x[i], out); }',
            "f", [x, out],
        )
        assert out.data == [1.0, 3.0, 6.0, 10.0]

    def test_scan_exclusive(self):
        x = farr([1, 2, 3, 4])
        out = farr([0] * 4)
        run_kokkos(
            'kernel f(x: array<float>, out: array<float>) { '
            'parallel_scan_exclusive(len(x), "sum", (i) => x[i], out); }',
            "f", [x, out],
        )
        assert out.data == [0.0, 1.0, 3.0, 6.0]

    def test_scan_min_inclusive(self):
        x = farr([8, 6, -1, 7])
        out = farr([0] * 4)
        run_kokkos(
            'kernel f(x: array<float>, out: array<float>) { '
            'parallel_scan_inclusive(len(x), "min", (i) => x[i], out); }',
            "f", [x, out],
        )
        assert out.data == [8.0, 6.0, -1.0, -1.0]

    def test_scan_output_too_short_traps(self):
        from repro.lang.errors import TrapError

        with pytest.raises(TrapError):
            run_kokkos(
                'kernel f(x: array<float>, out: array<float>) { '
                'parallel_scan_inclusive(len(x), "sum", (i) => x[i], out); }',
                "f", [farr(range(10)), farr([0] * 5)],
            )

    def test_lambda_captures_enclosing_scalars(self):
        ret, _ = run_kokkos(
            'kernel f(x: array<float>, a: float) -> float { '
            'return parallel_reduce(len(x), "sum", (i) => a * x[i]); }',
            "f", [farr([1, 2, 3]), 10.0],
        )
        assert ret == 60.0


class TestTimeModel:
    def test_omp_parallel_speedup_monotone_to_moderate_counts(self):
        x = farr(range(4096))
        _, ctx = run_omp(SUM_OMP, "f", [x], work_scale=512)
        t = {n: ctx.sim_seconds(n) for n in (1, 2, 4, 8, 16, 32)}
        assert t[2] < t[1]
        assert t[4] < t[2]
        assert t[8] < t[4]
        assert t[32] < t[1] / 4

    def test_scaled_run_beats_unscaled_efficiency(self):
        x = farr(range(4096))
        _, small = run_omp(SUM_OMP, "f", [x], work_scale=1)
        _, big = run_omp(SUM_OMP, "f", [x], work_scale=512)
        eff_small = small.sim_seconds(1) / small.sim_seconds(32) / 32
        eff_big = big.sim_seconds(1) / big.sim_seconds(32) / 32
        assert eff_big > eff_small  # overheads amortise with problem size

    def test_critical_section_serializes(self):
        crit = (
            "kernel f(x: array<float>) -> float { let total = 0.0; "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { pragma omp critical { total += x[i]; } } "
            "return total; }"
        )
        x = farr(range(2048))
        _, good = run_omp(SUM_OMP, "f", [x], work_scale=64)
        _, bad = run_omp(crit, "f", [x], work_scale=64)
        # critical-per-iteration must be much slower at 32 threads
        assert bad.sim_seconds(32) > 5 * good.sim_seconds(32)

    def test_atomic_contention_slower_than_reduction(self):
        atomic = (
            "kernel f(x: array<float>) -> float { let total = 0.0; "
            "pragma omp parallel for "
            "for (i in 0..len(x)) { pragma omp atomic total += x[i]; } "
            "return total; }"
        )
        x = farr(range(2048))
        _, good = run_omp(SUM_OMP, "f", [x], work_scale=64)
        _, bad = run_omp(atomic, "f", [x], work_scale=64)
        assert bad.sim_seconds(32) > 2 * good.sim_seconds(32)

    def test_kokkos_flatter_than_openmp_at_scale(self):
        kk = (
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(len(x), "sum", (i) => x[i]); }'
        )
        x = farr(range(4096))
        _, omp = run_omp(SUM_OMP, "f", [x], work_scale=8)
        _, kok = run_kokkos(kk, "f", [x], work_scale=8)
        # at tiny problem sizes OpenMP's linear fork/join cost bites harder
        omp_ratio = omp.sim_seconds(32) / omp.sim_seconds(8)
        kok_ratio = kok.sim_seconds(32) / kok.sim_seconds(8)
        assert kok_ratio < omp_ratio

    def test_static_chunk_time_balanced(self):
        costs = np.ones(100)
        assert static_chunk_time(costs, 4) == pytest.approx(25.0)

    def test_static_chunk_time_imbalanced_triangle(self):
        costs = np.arange(100, dtype=float)
        t4 = static_chunk_time(costs, 4)
        # last chunk holds the largest iterations
        assert t4 == pytest.approx(costs[75:].sum())

    def test_dynamic_beats_static_on_imbalance(self):
        costs = np.zeros(100)
        costs[:10] = 100.0  # heavy head
        s = static_chunk_time(costs, 4)
        d = dynamic_chunk_time(costs, 4, dispatch=0.1)
        assert d < s

    def test_chunk_time_single_thread_is_total(self):
        costs = np.arange(10, dtype=float)
        assert static_chunk_time(costs, 1) == pytest.approx(costs.sum())
        assert dynamic_chunk_time(costs, 1, 0.1) == pytest.approx(costs.sum())

    def test_empty_loop(self):
        assert static_chunk_time(np.zeros(0), 4) == 0.0
        assert dynamic_chunk_time(np.zeros(0), 4, 0.1) == 0.0
