"""Tests for the SIMT GPU runtime (CUDA and HIP dialects)."""

import pytest

from repro.lang.errors import DataRaceError, FuelExhausted, GPUFault
from repro.runtime import DEFAULT_MACHINE, Array, launch

from .helpers import compiled, farr, iarr


def gpu_run(src, kernel, args, threads, dialect="cuda", fuel=None,
            work_scale=1.0, block_size=256):
    cp = compiled(src)
    return launch(cp, kernel, args, threads, DEFAULT_MACHINE, dialect=dialect,
                  fuel=fuel, work_scale=work_scale, block_size=block_size)


RELU = """
kernel relu(x: array<float>) {
    let i = block_idx() * block_dim() + thread_idx();
    if (i < len(x)) {
        x[i] = max(x[i], 0.0);
    }
}
"""


class TestLaunchSemantics:
    def test_elementwise_kernel(self):
        x = farr([1, -2, 3, -4])
        res = gpu_run(RELU, "relu", [x], 4)
        assert res.error is None
        assert x.data == [1.0, 0.0, 3.0, 0.0]

    def test_grid_covers_bounds_check(self):
        # 1000 elements, 256-thread blocks -> 1024 threads; guard required
        x = farr([-1.0] * 1000)
        res = gpu_run(RELU, "relu", [x], 1000)
        assert res.error is None
        assert all(v == 0.0 for v in x.data)

    def test_missing_bounds_check_traps(self):
        src = RELU.replace("if (i < len(x)) {\n        x[i] = max(x[i], 0.0);\n    }",
                           "x[i] = max(x[i], 0.0);")
        res = gpu_run(src, "relu", [farr([-1.0] * 1000)], 1000)
        assert res.error is not None  # out-of-bounds in the tail threads

    def test_grid_stride_loop(self):
        src = """
        kernel f(x: array<float>) {
            let stride = block_dim() * grid_dim();
            let i = block_idx() * block_dim() + thread_idx();
            while (i < len(x)) {
                x[i] = x[i] * 2.0;
                i += stride;
            }
        }
        """
        x = farr(range(1000))
        res = gpu_run(src, "f", [x], 256, block_size=128)
        assert res.error is None
        assert x.data == [2.0 * i for i in range(1000)]

    def test_thread_identity(self):
        src = """
        kernel f(out: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(out)) {
                out[i] = block_idx() * 1000 + thread_idx();
            }
        }
        """
        out = iarr([0] * 8)
        res = gpu_run(src, "f", [out], 8, block_size=4)
        assert res.error is None
        assert out.data == [0, 1, 2, 3, 1000, 1001, 1002, 1003]

    def test_invalid_launch(self):
        res = gpu_run(RELU, "relu", [farr([1])], 0)
        assert isinstance(res.error, GPUFault)

    def test_return_value_from_thread0(self):
        src = """
        kernel f(x: array<float>) -> float {
            return x[0] + float(thread_idx());
        }
        """
        res = gpu_run(src, "f", [farr([5])], 4)
        assert res.ret == 5.0


class TestAtomicsAndRaces:
    def test_atomic_histogram_correct(self):
        src = """
        kernel hist(x: array<int>, h: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_add(h, x[i], 1);
            }
        }
        """
        x = iarr([i % 4 for i in range(400)])
        h = iarr([0, 0, 0, 0])
        res = gpu_run(src, "hist", [x, h], 400)
        assert res.error is None
        assert h.data == [100, 100, 100, 100]

    def test_unprotected_histogram_races(self):
        src = """
        kernel hist(x: array<int>, h: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                h[x[i]] += 1;
            }
        }
        """
        res = gpu_run(src, "hist", [iarr([i % 4 for i in range(400)]),
                                    iarr([0, 0, 0, 0])], 400)
        assert isinstance(res.error, DataRaceError)

    def test_atomic_min_max(self):
        src = """
        kernel f(x: array<float>, out: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_min(out, 0, x[i]);
                atomic_max(out, 1, x[i]);
            }
        }
        """
        x = farr([3, -7, 12, 5])
        out = farr([1e18, -1e18])
        res = gpu_run(src, "f", [x, out], 4)
        assert res.error is None
        assert out.data[0] == -7.0
        assert out.data[1] == 12.0

    def test_inplace_neighbour_read_races(self):
        src = """
        kernel f(x: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i > 0 && i < len(x) - 1) {
                x[i] = (x[i - 1] + x[i + 1]) / 2.0;
            }
        }
        """
        res = gpu_run(src, "f", [farr(range(300))], 300)
        assert isinstance(res.error, DataRaceError)

    def test_infinite_loop_exhausts_fuel(self):
        src = """
        kernel f(x: array<float>) {
            while (true) {
                sync_threads();
            }
        }
        """
        res = gpu_run(src, "f", [farr([1])], 32, fuel=20_000)
        assert isinstance(res.error, FuelExhausted)


class TestGPUTimeModel:
    def test_atomic_contention_slower_than_spread(self):
        contended = """
        kernel f(x: array<float>, out: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_add(out, 0, x[i]);
            }
        }
        """
        spread = """
        kernel f(x: array<float>, out: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_add(out, i, x[i]);
            }
        }
        """
        x = farr(range(2048))
        rc = gpu_run(contended, "f", [x, farr([0])], 2048, work_scale=64)
        rs = gpu_run(spread, "f", [x, farr([0] * 2048)], 2048, work_scale=64)
        assert rc.error is None and rs.error is None
        assert rc.sim_seconds > 3 * rs.sim_seconds

    def test_hip_slower_than_cuda_on_same_kernel(self):
        x1 = farr(range(4096))
        x2 = farr(range(4096))
        rc = gpu_run(RELU, "relu", [x1], 4096, dialect="cuda", work_scale=256)
        rh = gpu_run(RELU, "relu", [x2], 4096, dialect="hip", work_scale=256)
        assert rh.sim_seconds > rc.sim_seconds  # MI50 model is slower

    def test_work_scale_multiplies_threads(self):
        r1 = gpu_run(RELU, "relu", [farr(range(1024))], 1024, work_scale=1)
        rbig = gpu_run(RELU, "relu", [farr(range(1024))], 1024,
                       work_scale=65536)
        assert rbig.total_threads == 65536 * r1.total_threads
        # at small scales launch overhead dominates both; at a big enough
        # scale the throughput term must surface
        assert rbig.sim_seconds > r1.sim_seconds

    def test_thread0_serial_kernel_pays_serial_clock(self):
        """A kernel where one thread does all the work must not ride the
        aggregate-throughput term (regression for the critical-path
        scaling rule)."""
        t0 = """
        kernel f(x: array<float>) {
            if (block_idx() == 0 && thread_idx() == 0) {
                for (i in 0..len(x)) {
                    x[i] = max(x[i], 0.0);
                }
            }
        }
        """
        slow = gpu_run(t0, "f", [farr(range(1024))], 1024, work_scale=512)
        fast = gpu_run(RELU, "relu", [farr(range(1024))], 1024, work_scale=512)
        assert slow.error is None and fast.error is None
        assert slow.sim_seconds > 50 * fast.sim_seconds

    def test_launch_overhead_floor(self):
        res = gpu_run(RELU, "relu", [farr([1])], 1)
        assert res.sim_seconds >= DEFAULT_MACHINE.cuda.kernel_launch

    def test_divergence_costs_warp_max(self):
        divergent = """
        kernel f(x: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                if (i % 32 == 0) {
                    let s = 0.0;
                    for (k in 0..200) { s += 1.0; }
                    x[i] = s;
                } else {
                    x[i] = 1.0;
                }
            }
        }
        """
        uniform = """
        kernel f(x: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                x[i] = 1.0;
            }
        }
        """
        rd = gpu_run(divergent, "f", [farr(range(1024))], 1024, work_scale=4096)
        ru = gpu_run(uniform, "f", [farr(range(1024))], 1024, work_scale=4096)
        # one slow lane per warp drags the whole warp
        assert rd.sim_seconds > 5 * ru.sim_seconds
