"""Shared helpers for runtime tests."""

from repro.lang import compile_source
from repro.runtime import (
    DEFAULT_MACHINE,
    Array,
    ExecCtx,
    KokkosRuntime,
    OpenMPRuntime,
    SerialRuntime,
    compile_program,
)


def compiled(src):
    return compile_program(compile_source(src))


def run_serial(src, kernel, args, fuel=None, work_scale=1.0):
    cp = compiled(src)
    ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime(), fuel=fuel, work_scale=work_scale)
    ret = cp.run_kernel(kernel, ctx, args)
    return ret, ctx


def run_omp(src, kernel, args, fuel=None, work_scale=1.0, threads=(1, 2, 4, 8, 16, 32)):
    cp = compiled(src)
    ctx = ExecCtx(DEFAULT_MACHINE, OpenMPRuntime(threads), fuel=fuel,
                  work_scale=work_scale)
    ret = cp.run_kernel(kernel, ctx, args)
    return ret, ctx


def run_kokkos(src, kernel, args, fuel=None, work_scale=1.0,
               threads=(1, 2, 4, 8, 16, 32)):
    cp = compiled(src)
    ctx = ExecCtx(DEFAULT_MACHINE, KokkosRuntime(threads), fuel=fuel,
                  work_scale=work_scale)
    ret = cp.run_kernel(kernel, ctx, args)
    return ret, ctx


def farr(values):
    return Array.from_list([float(v) for v in values], "float")


def iarr(values):
    return Array.from_list([int(v) for v in values], "int")
