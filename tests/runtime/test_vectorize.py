"""Differential tests for the tier-2 vectorized executor.

The contract under test (see ``repro.runtime.vectorize``): with the tier
enabled, every observable — return value, array contents, ``ctx.cost``
(bitwise), ``parallel_adjust``, raised error type *and message*, tracer
verdicts, idiom-hit counters aside — is identical to the scalar closure
tier.  Loops the recognizer cannot prove safe must fall back wholesale.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.errors import DataRaceError, FuelExhausted, MiniParError, TrapError
from repro.runtime import (
    DEFAULT_MACHINE,
    Array,
    ExecCtx,
    KokkosRuntime,
    OpenMPRuntime,
    SerialRuntime,
    launch,
    run_mpi,
)
from repro.runtime.vectorize import (
    MIN_SERIAL_ITERS,
    MIN_WINDOWED_ITERS,
    VecStats,
)

from .helpers import compiled, farr, iarr

THREADS = (1, 2, 4, 8)


def _run_one(src, kernel, args, rt_factory, vectorize, fuel=None):
    cp = compiled(src)
    stats = VecStats()
    ctx = ExecCtx(DEFAULT_MACHINE, rt_factory(), fuel=fuel,
                  vectorize=vectorize, vec_stats=stats)
    ret, err = None, None
    try:
        ret = cp.run_kernel(kernel, ctx, args)
    except MiniParError as exc:
        err = f"{type(exc).__name__}: {exc}"
    return ret, err, ctx, stats


def assert_identical(src, kernel, make_args, rt_factory=SerialRuntime,
                     fuel=None):
    """Run both tiers on fresh arguments and compare every observable.
    Returns the vectorized tier's stats for hit/fallback assertions."""
    a_on = make_args()
    a_off = make_args()
    ret1, err1, ctx1, stats = _run_one(src, kernel, a_on, rt_factory,
                                       True, fuel)
    ret0, err0, ctx0, _ = _run_one(src, kernel, a_off, rt_factory,
                                   False, fuel)
    assert err1 == err0
    assert ret1 == ret0
    assert ctx1.cost == ctx0.cost          # bitwise, not approx
    assert ctx1.parallel_adjust == ctx0.parallel_adjust
    for x, y in zip(a_on, a_off):
        if isinstance(x, Array):
            assert x.data == y.data
    return stats


N = 4 * MIN_WINDOWED_ITERS


def _floats(n=N, seed=3):
    return lambda: [farr(np.random.default_rng(seed).standard_normal(n))]


def _two_floats(n=N, seed=5):
    def make():
        rng = np.random.default_rng(seed)
        return [farr(rng.standard_normal(n)), farr(rng.standard_normal(n))]
    return make


class TestSerialBulk:
    def test_axpy_hits_bulk(self):
        src = """
        kernel axpy(a: float, x: array<float>, y: array<float>) {
            for (i in 0..len(x)) {
                y[i] = a * x[i] + y[i];
            }
        }
        """
        def make():
            rng = np.random.default_rng(0)
            return [1.5, farr(rng.standard_normal(N)),
                    farr(rng.standard_normal(N))]
        stats = assert_identical(src, "axpy", make)
        assert stats.bulk_loops == 1
        assert stats.bulk_iters == N
        assert stats.fallbacks == 0

    def test_scalar_tier_reports_scalar(self):
        _, _, _, stats = _run_one(
            "kernel k(x: array<float>) { for (i in 0..len(x)) "
            "{ x[i] = x[i] + 1.0; } }",
            "k", [farr(np.arange(N))], SerialRuntime, False)
        assert stats.bulk_loops == 0
        assert stats.as_dict(False)["tier"] == "scalar"

    def test_strided_and_offset_affine(self):
        src = """
        kernel stride(x: array<float>, y: array<float>) {
            for (i in 0..200) {
                y[2 * i + 1] = x[2 * i] - 3.0 * x[2 * i + 1];
            }
        }
        """
        stats = assert_identical(src, "stride", _two_floats(400))
        assert stats.bulk_loops == 1

    def test_compound_store(self):
        src = """
        kernel acc(x: array<float>, y: array<float>) {
            for (i in 0..len(x)) {
                y[i] += x[i] * x[i];
            }
        }
        """
        stats = assert_identical(src, "acc", _two_floats())
        assert stats.bulk_loops == 1

    @pytest.mark.parametrize("op", ["+=", "-=", "*="])
    def test_float_reductions_replay_sequential_fold(self, op):
        src = f"""
        kernel red(x: array<float>) -> float {{
            let s = 1.0;
            for (i in 0..len(x)) {{
                s {op} x[i];
            }}
            return s;
        }}
        """
        # values near 1.0 keep *= products finite and order-sensitive
        def make():
            rng = np.random.default_rng(11)
            return [farr(1.0 + 0.01 * rng.standard_normal(N))]
        stats = assert_identical(src, "red", make)
        assert stats.bulk_loops == 1

    def test_int_sum_reduction(self):
        src = """
        kernel isum(x: array<int>) -> int {
            let s = 0;
            for (i in 0..len(x)) {
                s += x[i];
            }
            return s;
        }
        """
        def make():
            rng = np.random.default_rng(13)
            return [iarr(rng.integers(-1000, 1000, size=N))]
        stats = assert_identical(src, "isum", make)
        assert stats.bulk_loops == 1

    def test_int_elementwise_stays_int(self):
        src = """
        kernel scale(x: array<int>) {
            for (i in 0..len(x)) {
                x[i] = x[i] * 3 + 1;
            }
        }
        """
        def make():
            rng = np.random.default_rng(17)
            return [iarr(rng.integers(-50, 50, size=N))]
        stats = assert_identical(src, "scale", make)
        assert stats.bulk_loops == 1
        args = make()
        _run_one(src, "scale", args, SerialRuntime, True)
        assert all(type(v) is int for v in args[0].data)

    def test_small_loop_stays_scalar(self):
        n = MIN_SERIAL_ITERS - 1
        src = """
        kernel k(x: array<float>) {
            for (i in 0..len(x)) {
                x[i] = x[i] + 1.0;
            }
        }
        """
        stats = assert_identical(src, "k", _floats(n))
        assert stats.bulk_loops == 0


class TestFallbacks:
    """Bodies outside the grammar (or failing a precheck) must run on the
    scalar tier — and still be observably identical."""

    def test_division_not_vectorized(self):
        src = """
        kernel div(x: array<float>) {
            for (i in 0..len(x)) {
                x[i] = x[i] / 2.0;
            }
        }
        """
        def make():
            rng = np.random.default_rng(19)
            return [farr(1.0 + np.abs(np.random.default_rng(19)
                                      .standard_normal(N)))]
        stats = assert_identical(src, "div", make)
        assert stats.bulk_loops == 0

    def test_builtin_call_not_vectorized(self):
        src = """
        kernel relu(x: array<float>) {
            for (i in 0..len(x)) {
                x[i] = max(x[i], 0.0);
            }
        }
        """
        stats = assert_identical(src, "relu", _floats())
        assert stats.bulk_loops == 0

    def test_conditional_not_vectorized(self):
        src = """
        kernel clamp(x: array<float>) {
            for (i in 0..len(x)) {
                if (x[i] < 0.0) {
                    x[i] = 0.0;
                }
            }
        }
        """
        stats = assert_identical(src, "clamp", _floats())
        assert stats.bulk_loops == 0

    def test_aliased_arguments_fall_back_at_runtime(self):
        # the *plan* is eligible; the alias is only visible at run time,
        # when both parameters are bound to the same Array
        src = """
        kernel shift(x: array<float>, y: array<float>) {
            for (i in 1..len(x)) {
                y[i] = x[i - 1] * 2.0;
            }
        }
        """
        def make():
            a = farr(np.random.default_rng(23).standard_normal(N))
            return [a, a]

        stats = assert_identical(src, "shift", make)
        assert stats.bulk_loops == 0
        assert stats.fallbacks >= 1

    def test_distinct_arrays_do_vectorize_the_same_plan(self):
        src = """
        kernel shift(x: array<float>, y: array<float>) {
            for (i in 1..len(x)) {
                y[i] = x[i - 1] * 2.0;
            }
        }
        """
        stats = assert_identical(src, "shift", _two_floats())
        assert stats.bulk_loops == 1

    def test_out_of_bounds_trap_is_identical(self):
        src = """
        kernel oob(x: array<float>, y: array<float>) {
            for (i in 0..len(x)) {
                y[i + 8] = x[i];
            }
        }
        """
        def make():
            rng = np.random.default_rng(29)
            return [farr(rng.standard_normal(N)),
                    farr(rng.standard_normal(N))]  # y too short by 8

        ret1, err1, ctx1, stats = _run_one(src, "oob", make(),
                                           SerialRuntime, True)
        ret0, err0, ctx0, _ = _run_one(src, "oob", make(),
                                       SerialRuntime, False)
        assert err1 == err0 and err1 is not None
        assert "TrapError" in err1
        assert ctx1.cost == ctx0.cost
        assert stats.bulk_loops == 0     # bounds precheck declined

    def test_fuel_exhaustion_is_identical(self):
        src = """
        kernel burn(x: array<float>) {
            for (i in 0..len(x)) {
                x[i] = x[i] + 1.0;
            }
        }
        """
        fuel = 500   # exhausts mid-loop
        ret1, err1, ctx1, _ = _run_one(src, "burn", [farr(np.zeros(N))],
                                       SerialRuntime, True, fuel=fuel)
        ret0, err0, ctx0, _ = _run_one(src, "burn", [farr(np.zeros(N))],
                                       SerialRuntime, False, fuel=fuel)
        assert err1 == err0 and err1 is not None
        assert "FuelExhausted" in err1
        assert ctx1.cost == ctx0.cost

    def test_int_overflow_risk_falls_back(self):
        # products can exceed 2^62: the interval precheck must refuse,
        # because int64 numpy would wrap where Python promotes
        src = """
        kernel big(x: array<int>) -> int {
            let s = 0;
            for (i in 0..len(x)) {
                s += x[i] * x[i];
            }
            return s;
        }
        """
        big = 1 << 33

        def make():
            return [iarr([big] * N)]

        stats = assert_identical(src, "big", make)
        assert stats.bulk_loops == 0


class TestParallelRuntimes:
    def test_omp_windowed_identical(self):
        src = """
        kernel scale(x: array<float>, y: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                y[i] = 2.5 * x[i] - 1.0;
            }
        }
        """
        stats = assert_identical(src, "scale", _two_floats(),
                                 lambda: OpenMPRuntime(THREADS))
        assert stats.bulk_loops == 1
        # the two 48-iteration trace windows run on the scalar tier
        assert stats.bulk_iters == N - 96

    def test_omp_race_verdict_identical(self):
        # every iteration writes index 0: outside the vector grammar
        # (coefficient 0), so both tiers trace it — and both must race
        src = """
        kernel racy(x: array<float>, y: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                y[0] = x[i];
            }
        }
        """
        for vec in (True, False):
            _, err, _, _ = _run_one(src, "racy", _two_floats()(),
                                    lambda: OpenMPRuntime(THREADS), vec)
            assert err is not None and "DataRaceError" in err

    def test_kokkos_reduce_identical(self):
        src = """
        kernel ksum(x: array<float>) -> float {
            let s = parallel_reduce(len(x), "sum", (i) => x[i] * x[i]);
            return s;
        }
        """
        stats = assert_identical(src, "ksum", _floats(),
                                 lambda: KokkosRuntime(THREADS))
        assert stats.bulk_loops == 1

    def test_kokkos_for_identical(self):
        src = """
        kernel kfor(x: array<float>, y: array<float>) {
            parallel_for(len(x), (i) => {
                y[i] = x[i] * 3.0 + 0.5;
            });
        }
        """
        stats = assert_identical(src, "kfor", _two_floats(),
                                 lambda: KokkosRuntime(THREADS))
        assert stats.bulk_loops == 1

    def test_mpi_rank_loops_identical(self):
        src = """
        kernel msum(x: array<float>, y: array<float>) {
            let r = mpi_rank();
            let p = mpi_size();
            let chunk = len(x) / p;
            let lo = r * chunk;
            for (i in 0..chunk) {
                y[lo + i] = x[lo + i] * 2.0;
            }
            mpi_barrier();
        }
        """
        cp = compiled(src)
        rng = np.random.default_rng(31)
        base = rng.standard_normal(1024)
        out = {}
        for vec in (True, False):
            x, y = farr(base), farr(np.zeros(1024))
            stats = VecStats()
            res = run_mpi(cp, "msum", [x, y], 4, DEFAULT_MACHINE,
                          vectorize=vec, vec_stats=stats)
            assert res.error is None
            out[vec] = (res.sim_seconds, y.data, stats)
        assert out[True][0] == out[False][0]
        assert out[True][1] == out[False][1]
        assert out[True][2].bulk_loops > 0

    @pytest.mark.parametrize("dialect", ["cuda", "hip"])
    def test_gpu_thread_loops_identical(self, dialect):
        # a grid-stride-free kernel where thread 0 does a serial sweep:
        # the in-kernel for loop is a serial loop under an active tracer
        # window, so bulk segments interleave with traced iterations
        src = """
        kernel gk(x: array<float>, y: array<float>) {
            let t = thread_idx() + block_idx() * block_dim();
            if (t == 0) {
                for (i in 0..len(x)) {
                    y[i] = x[i] + 1.0;
                }
            }
        }
        """
        cp = compiled(src)
        rng = np.random.default_rng(37)
        base = rng.standard_normal(N)
        out = {}
        for vec in (True, False):
            x, y = farr(base), farr(np.zeros(N))
            res = launch(cp, "gk", [x, y], 64, DEFAULT_MACHINE,
                         dialect=dialect, vectorize=vec)
            assert res.error is None
            out[vec] = (res.sim_seconds, y.data)
        assert out[True] == out[False]


class TestTouchBlock:
    """Satellite: bulk tracer recording for whole-array builtins."""

    def _reference(self, tracer_ctor, iteration, n, write, prot):
        from repro.runtime.tracer import Tracer

        arr = farr(np.zeros(max(n, 1)))
        t = Tracer(200)
        t.begin_iteration(iteration)
        if write:
            for k in range(n):
                t.write(arr, k, prot)
        else:
            for k in range(n):
                t.read(arr, k, prot)
        t2 = Tracer(200)
        t2.begin_iteration(iteration)
        t2.touch_block(arr, n, write, prot)
        return t, t2

    @pytest.mark.parametrize("iteration", [0, 100])   # in / out of window
    @pytest.mark.parametrize("write", [True, False])
    @pytest.mark.parametrize("prot", [0, 1, 2])
    def test_touch_block_equals_element_loop(self, iteration, write, prot):
        t, t2 = self._reference(None, iteration, 64, write, prot)
        assert t.accesses == t2.accesses
        assert t.atomic_ops == t2.atomic_ops
        assert t.atomic_targets == t2.atomic_targets
        assert t.race == t2.race

    def test_fill_copy_charges_unchanged(self):
        # fill/copy/sort charge per-element cost units independent of the
        # tracer path; the bulk touch must not change any charge
        src = """
        kernel fc(x: array<float>) -> float {
            let y = copy(x);
            fill(y, 1.0);
            return y[0];
        }
        """
        stats = assert_identical(src, "fc", _floats())
        assert stats.fallbacks == 0


class TestArrayRoundTrip:
    def test_to_from_numpy_bulk_round_trip(self):
        rng = np.random.default_rng(41)
        data = rng.standard_normal(10_000)
        a = Array.from_numpy(data)
        assert a.elem == "float"
        back = a.to_numpy()
        assert back.dtype == np.float64
        assert np.array_equal(back, data)
        assert all(type(v) is float for v in a.data[:10])

    def test_int_round_trip(self):
        vals = np.arange(-500, 500, dtype=np.int64)
        a = Array.from_numpy(vals)
        assert a.elem == "int"
        assert all(type(v) is int for v in a.data[:10])
        assert np.array_equal(a.to_numpy(), vals)


# -- property-based differential -------------------------------------------

_COEFFS = st.sampled_from([1, 2, 3, -1])
_OFFS = st.integers(-2, 2)
_OPS = st.sampled_from(["=", "+=", "-=", "*="])


@st.composite
def affine_bodies(draw):
    """A random (often vectorizable, sometimes not) loop body over
    x (read) and y (written), plus an invariant scalar a."""
    coeff = draw(_COEFFS)
    off = draw(_OFFS)
    op = draw(_OPS)
    terms = draw(st.integers(1, 3))
    parts = []
    for _ in range(terms):
        kind = draw(st.sampled_from(["load", "lit", "scalar", "ivar"]))
        if kind == "load":
            c2, o2 = draw(_COEFFS), draw(_OFFS)
            parts.append(f"x[{c2} * i + {o2}]")
        elif kind == "lit":
            parts.append(f"{draw(st.floats(-4, 4, allow_nan=False)):.3f}")
        elif kind == "scalar":
            parts.append("a")
        else:
            parts.append("(i * 0.5)")
    expr = draw(st.sampled_from([" + ", " - ", " * "])).join(parts)
    return f"y[{coeff} * i + {off}] {op} {expr};"


@settings(max_examples=60, deadline=None)
@given(body=affine_bodies(),
       lo=st.integers(0, 4),
       n=st.sampled_from([8, 64, 200]),
       seed=st.integers(0, 2**16))
def test_random_affine_loops_are_tier_invariant(body, lo, n, seed):
    src = f"""
    kernel k(a: float, x: array<float>, y: array<float>) {{
        for (i in {lo}..{lo + n}) {{
            {body}
        }}
    }}
    """
    rng = np.random.default_rng(seed)
    size = lo + n * 3 + 8
    base_x = rng.standard_normal(size)
    base_y = rng.standard_normal(size)
    a = float(rng.standard_normal())

    def make():
        return [a, farr(base_x), farr(base_y)]

    # traps (out-of-bounds from negative lane positions) must also be
    # identical, which assert-style comparison of err covers
    ret1, err1, ctx1, _ = _run_one(src, "k", make(), SerialRuntime, True)
    ret0, err0, ctx0, _ = _run_one(src, "k", make(), SerialRuntime, False)
    assert err1 == err0
    assert ret1 == ret0
    assert ctx1.cost == ctx0.cost
    a1 = make()
    a0 = make()
    _run_one(src, "k", a1, SerialRuntime, True)
    _run_one(src, "k", a0, SerialRuntime, False)
    assert a1[1].data == a0[1].data
    assert a1[2].data == a0[2].data
