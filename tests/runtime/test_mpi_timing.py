"""Tests for MPI *simulated-time* semantics: waiting, message latency,
collective completion, and work scaling of message sizes."""

import pytest

from repro.runtime import DEFAULT_MACHINE, run_mpi

from .helpers import compiled, farr


def sim(src, args, nranks, **kw):
    res = run_mpi(compiled(src), "f", args, nranks, DEFAULT_MACHINE, **kw)
    assert res.error is None, res.error
    return res


class TestWaiting:
    def test_receiver_waits_for_slow_sender(self):
        # rank 1 burns ~200k op units before sending; rank 0 receives
        # immediately -> total time must include rank 1's compute
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                let acc = 0.0;
                for (i in 0..100000) {
                    acc += 1.0;
                }
                mpi_send(acc, 0, 0);
                return acc;
            }
            return mpi_recv_float(1, 0);
        }
        """
        res = sim(src, [farr([0])], 2)
        assert res.ret == 100000.0
        assert res.sim_seconds > 100000 * DEFAULT_MACHINE.cpu.cycle

    def test_buffered_send_does_not_block_sender(self):
        # both ranks send first, then receive: with buffered sends the
        # total time is ~one message latency, not a deadlock
        src = """
        kernel f(x: array<float>) -> float {
            let peer = 1 - mpi_rank();
            mpi_send(1.0, peer, 0);
            return mpi_recv_float(peer, 0);
        }
        """
        res = sim(src, [farr([0])], 2)
        assert res.ret == 1.0

    def test_collective_completion_from_last_arrival(self):
        # rank 1 arrives at the barrier ~100k units late; everyone's clock
        # must advance past it
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                let acc = 0.0;
                for (i in 0..100000) {
                    acc += 1.0;
                }
            }
            mpi_barrier();
            return 1.0;
        }
        """
        res = sim(src, [farr([0])], 4)
        assert res.sim_seconds > 100000 * DEFAULT_MACHINE.cpu.cycle


class TestMessageCosts:
    def test_bigger_messages_cost_more(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(x, 0, 0);
                return 0.0;
            }
            let got = mpi_recv_array_float(1, 0);
            return got[0];
        }
        """
        small = sim(src, [farr([1.0] * 16)], 2, work_scale=1)
        big = sim(src, [farr([1.0] * 16)], 2, work_scale=4096)
        assert big.sim_seconds > small.sim_seconds

    def test_intra_node_cheaper_than_cross_node(self):
        # ranks 0/1 share a node; ranks 0/64 are on different nodes
        src_near = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(x, 0, 0);
            }
            if (mpi_rank() == 0) {
                let got = mpi_recv_array_float(1, 0);
                return got[0];
            }
            return 0.0;
        }
        """
        src_far = src_near.replace("mpi_rank() == 1", "mpi_rank() == 64") \
                          .replace("mpi_recv_array_float(1, 0)",
                                   "mpi_recv_array_float(64, 0)")
        near = sim(src_near, [farr([1.0] * 512)], 2, work_scale=512)
        far = sim(src_far, [farr([1.0] * 512)], 65, work_scale=512)
        assert far.sim_seconds > near.sim_seconds

    def test_collective_cost_grows_with_ranks(self):
        src = """
        kernel f(x: array<float>) -> float {
            return mpi_allreduce_float(1.0, "sum");
        }
        """
        t4 = sim(src, [farr([0])], 4).sim_seconds
        t64 = sim(src, [farr([0])], 64).sim_seconds
        assert t64 > t4
