"""Tests for the MPI and hybrid runtimes."""

import pytest

from repro.lang.errors import DeadlockError, FuelExhausted, MPIUsageError
from repro.runtime import DEFAULT_MACHINE, Array, run_mpi

from .helpers import compiled, farr, iarr


def mpi_run(src, kernel, args, nranks, threads_per_rank=0, fuel=None,
            work_scale=1.0):
    cp = compiled(src)
    return run_mpi(cp, kernel, args, nranks, DEFAULT_MACHINE,
                   work_scale=work_scale, fuel=fuel,
                   threads_per_rank=threads_per_rank)


BLOCK_SUM = """
kernel f(x: array<float>) -> float {
    let rank = mpi_rank();
    let size = mpi_size();
    let n = len(x);
    let chunk = (n + size - 1) / size;
    let lo = rank * chunk;
    let hi = min(lo + chunk, n);
    let local = 0.0;
    for (i in lo..hi) {
        local += x[i];
    }
    return mpi_reduce_float(local, "sum", 0);
}
"""


class TestPointToPoint:
    def test_send_recv_scalar(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                mpi_send(42.5, 1, 0);
                return 0.0;
            } else {
                return mpi_recv_float(0, 0);
            }
        }
        """
        # rank 1 receives; rank 0's return is checked, so invert roles
        src = src.replace("mpi_rank() == 0", "mpi_rank() == 1").replace(
            "mpi_send(42.5, 1, 0)", "mpi_send(42.5, 0, 0)"
        ).replace("mpi_recv_float(0, 0)", "mpi_recv_float(1, 0)")
        res = mpi_run(src, "f", [farr([0])], 2)
        assert res.error is None
        assert res.ret == 42.5

    def test_send_recv_array_copies(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(x, 0, 3);
                x[0] = 99.0;
                return 0.0;
            }
            let got = mpi_recv_array_float(1, 3);
            return got[0];
        }
        """
        res = mpi_run(src, "f", [farr([7, 8])], 2)
        assert res.error is None
        assert res.ret == 7.0  # value at send time, not after mutation

    def test_fifo_per_channel(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(1.0, 0, 0);
                mpi_send(2.0, 0, 0);
                return 0.0;
            }
            let a = mpi_recv_float(1, 0);
            let b = mpi_recv_float(1, 0);
            return a * 10.0 + b;
        }
        """
        res = mpi_run(src, "f", [farr([0])], 2)
        assert res.ret == 12.0

    def test_tag_matching(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(1.0, 0, 5);
                mpi_send(2.0, 0, 9);
                return 0.0;
            }
            let b = mpi_recv_float(1, 9);
            let a = mpi_recv_float(1, 5);
            return a * 10.0 + b;
        }
        """
        res = mpi_run(src, "f", [farr([0])], 2)
        assert res.ret == 12.0

    def test_type_mismatch_detected(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 1) {
                mpi_send(x, 0, 0);
                return 0.0;
            }
            return mpi_recv_float(1, 0);
        }
        """
        res = mpi_run(src, "f", [farr([1])], 2)
        assert isinstance(res.error, MPIUsageError)

    def test_invalid_destination_rank(self):
        src = """
        kernel f(x: array<float>) -> float {
            mpi_send(1.0, 99, 0);
            return 0.0;
        }
        """
        res = mpi_run(src, "f", [farr([1])], 2)
        assert isinstance(res.error, MPIUsageError)

    def test_deadlock_cyclic_recv(self):
        src = """
        kernel f(x: array<float>) -> float {
            return mpi_recv_float((mpi_rank() + 1) % mpi_size(), 0);
        }
        """
        res = mpi_run(src, "f", [farr([1])], 4)
        assert isinstance(res.error, DeadlockError)

    def test_partial_recv_deadlock_after_finish(self):
        # rank 0 expects a message no one sends; rank 1 just exits
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                return mpi_recv_float(1, 0);
            }
            return 0.0;
        }
        """
        res = mpi_run(src, "f", [farr([1])], 2)
        assert isinstance(res.error, DeadlockError)


class TestCollectives:
    def test_block_sum_many_rank_counts(self):
        x = farr(range(512))
        for p in (1, 2, 4, 16, 64):
            res = mpi_run(BLOCK_SUM, "f", [x], p)
            assert res.error is None, res.error
            assert res.ret == sum(range(512))

    def test_allreduce(self):
        src = """
        kernel f(x: array<float>) -> float {
            return mpi_allreduce_float(float(mpi_rank()), "max");
        }
        """
        res = mpi_run(src, "f", [farr([0])], 8)
        assert res.ret == 7.0

    def test_allreduce_int_kind(self):
        src = """
        kernel f(x: array<float>) -> int {
            return mpi_allreduce_int(1, "sum");
        }
        """
        res = mpi_run(src, "f", [farr([0])], 8)
        assert res.ret == 8
        assert isinstance(res.ret, int)

    def test_bcast_scalar(self):
        src = """
        kernel f(x: array<float>) -> float {
            let v = 0.0;
            if (mpi_rank() == 2) { v = 5.5; }
            return mpi_bcast_float(v, 2);
        }
        """
        res = mpi_run(src, "f", [farr([0])], 4)
        assert res.ret == 5.5

    def test_bcast_array_in_place(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() != 0) { fill(x, 0.0); }
            mpi_bcast_array(x, 0);
            if (mpi_rank() == 3) {
                mpi_send(x[1], 0, 0);
            }
            if (mpi_rank() == 0) {
                return mpi_recv_float(3, 0);
            }
            return 0.0;
        }
        """
        res = mpi_run(src, "f", [farr([4, 5, 6])], 4)
        assert res.ret == 5.0

    def test_scan(self):
        src = """
        kernel f(x: array<float>) -> float {
            let v = mpi_scan_float(1.0, "sum");
            return mpi_bcast_float(v, mpi_size() - 1);
        }
        """
        res = mpi_run(src, "f", [farr([0])], 6)
        assert res.ret == 6.0

    def test_scatter_gather_roundtrip(self):
        src = """
        kernel f(x: array<float>, out: array<float>) {
            let chunk = mpi_scatter_array(x, 0);
            for (i in 0..len(chunk)) {
                chunk[i] = chunk[i] + 100.0;
            }
            let full = mpi_gather_array(chunk, 0);
            if (mpi_rank() == 0) {
                for (i in 0..len(out)) {
                    out[i] = full[i];
                }
            }
        }
        """
        x = farr(range(16))
        out = farr([0] * 16)
        res = mpi_run(src, "f", [x, out], 4)
        assert res.error is None
        assert res.args[1].data == [float(i) + 100.0 for i in range(16)]

    def test_scatter_uneven_is_usage_error(self):
        src = """
        kernel f(x: array<float>) -> float {
            let chunk = mpi_scatter_array(x, 0);
            return 0.0;
        }
        """
        res = mpi_run(src, "f", [farr(range(10))], 4)
        assert isinstance(res.error, MPIUsageError)

    def test_allgather(self):
        src = """
        kernel f(x: array<float>) -> float {
            let local = alloc_float(1);
            local[0] = float(mpi_rank());
            let full = mpi_allgather_array(local);
            return full[len(full) - 1];
        }
        """
        res = mpi_run(src, "f", [farr([0])], 5)
        assert res.ret == 4.0

    def test_allreduce_array(self):
        src = """
        kernel f(x: array<float>) -> float {
            let local = alloc_float(3);
            fill(local, float(mpi_rank() + 1));
            mpi_allreduce_array(local, "sum");
            return local[0];
        }
        """
        res = mpi_run(src, "f", [farr([0])], 4)
        assert res.ret == 1 + 2 + 3 + 4

    def test_reduce_array_at_root(self):
        src = """
        kernel f(x: array<float>) -> float {
            let local = alloc_float(2);
            fill(local, 1.0);
            mpi_reduce_array(local, "sum", 0);
            return local[1];
        }
        """
        res = mpi_run(src, "f", [farr([0])], 8)
        assert res.ret == 8.0

    def test_mismatched_collectives(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                return mpi_allreduce_float(1.0, "sum");
            }
            return mpi_bcast_float(1.0, 0);
        }
        """
        res = mpi_run(src, "f", [farr([0])], 4)
        assert isinstance(res.error, MPIUsageError)

    def test_mismatched_reduce_ops(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                return mpi_allreduce_float(1.0, "sum");
            }
            return mpi_allreduce_float(1.0, "max");
        }
        """
        res = mpi_run(src, "f", [farr([0])], 2)
        assert isinstance(res.error, MPIUsageError)

    def test_barrier(self):
        src = """
        kernel f(x: array<float>) -> float {
            mpi_barrier();
            mpi_barrier();
            return 1.0;
        }
        """
        res = mpi_run(src, "f", [farr([0])], 8)
        assert res.ret == 1.0


class TestMPITimeAndFailures:
    def test_inputs_replicated_not_shared(self):
        src = """
        kernel f(x: array<float>) -> float {
            x[0] = float(mpi_rank());
            mpi_barrier();
            return x[0];
        }
        """
        res = mpi_run(src, "f", [farr([99])], 4)
        assert res.ret == 0.0  # rank 0 sees its own write only

    def test_scaling_efficiency_declines_at_high_rank_counts(self):
        x = farr(range(2048))
        times = {}
        for p in (1, 8, 64, 256):
            res = mpi_run(BLOCK_SUM, "f", [x], p, work_scale=256)
            assert res.error is None
            times[p] = res.sim_seconds
        eff_8 = times[1] / times[8] / 8
        eff_256 = times[1] / times[256] / 256
        assert eff_8 > eff_256  # communication eats efficiency at scale
        assert times[8] < times[1]

    def test_fuel_exhaustion_on_one_rank_aborts_all(self):
        src = """
        kernel f(x: array<float>) -> float {
            if (mpi_rank() == 0) {
                let s = 0.0;
                while (true) { s += 1.0; }
            }
            return mpi_allreduce_float(1.0, "sum");
        }
        """
        res = mpi_run(src, "f", [farr([0])], 4, fuel=30_000)
        assert isinstance(res.error, FuelExhausted)

    def test_hybrid_runs_openmp_inside_ranks(self):
        src = """
        kernel f(x: array<float>) -> float {
            let rank = mpi_rank();
            let size = mpi_size();
            let chunk = (len(x) + size - 1) / size;
            let lo = rank * chunk;
            let hi = min(lo + chunk, len(x));
            let local = 0.0;
            pragma omp parallel for reduction(+: local)
            for (i in lo..hi) {
                local += x[i];
            }
            return mpi_reduce_float(local, "sum", 0);
        }
        """
        x = farr(range(1024))
        r11 = mpi_run(src, "f", [x], 1, threads_per_rank=1, work_scale=256)
        r44 = mpi_run(src, "f", [x], 4, threads_per_rank=16, work_scale=256)
        assert r11.error is None and r44.error is None
        assert r11.ret == r44.ret == sum(range(1024))
        assert r44.sim_seconds < r11.sim_seconds

    def test_single_rank_runs_inline(self):
        res = mpi_run(BLOCK_SUM, "f", [farr(range(64))], 1)
        assert res.ret == sum(range(64))
