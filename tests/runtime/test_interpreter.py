"""Semantics tests for the closure compiler / serial interpreter."""

import math

import pytest

from repro.lang.errors import FuelExhausted, TrapError
from repro.runtime import Array

from .helpers import farr, iarr, run_serial


class TestScalars:
    def test_arithmetic(self):
        ret, _ = run_serial("kernel f() -> int { return 2 + 3 * 4; }", "f", [])
        assert ret == 14

    def test_int_division_truncates_toward_zero(self):
        ret, _ = run_serial("kernel f() -> int { return (0 - 7) / 2; }", "f", [])
        assert ret == -3  # C semantics, not Python floor (-4)

    def test_int_modulo_sign_of_dividend(self):
        ret, _ = run_serial("kernel f() -> int { return (0 - 7) % 3; }", "f", [])
        assert ret == -1

    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() -> int { let z = 0; return 1 / z; }", "f", [])

    def test_float_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() -> float { let z = 0.0; return 1.0 / z; }", "f", [])

    def test_mixed_arithmetic_promotes(self):
        ret, _ = run_serial("kernel f() -> float { return 3 / 2.0; }", "f", [])
        assert ret == 1.5

    def test_declared_float_from_int_literal(self):
        ret, _ = run_serial(
            "kernel f() -> float { let a: float = 1; return a / 2; }", "f", []
        )
        assert ret == 0.5

    def test_comparison_chain(self):
        ret, _ = run_serial(
            "kernel f(n: int) -> bool { return n > 0 && n < 10; }", "f", [5]
        )
        assert ret is True

    def test_short_circuit_and(self):
        # right side would trap (division by zero) if evaluated
        ret, _ = run_serial(
            "kernel f() -> bool { let z = 0; return false && 1 / z == 0; }",
            "f", [],
        )
        assert ret is False

    def test_unary(self):
        ret, _ = run_serial("kernel f() -> int { return -(-5); }", "f", [])
        assert ret == 5

    def test_select(self):
        ret, _ = run_serial(
            "kernel f(n: int) -> int { return select(n % 2 == 0, 0, 1); }", "f", [7]
        )
        assert ret == 1


class TestArrays:
    def test_load_store(self):
        x = farr([1, 2, 3])
        run_serial("kernel f(x: array<float>) { x[1] = x[0] + x[2]; }", "f", [x])
        assert x.data == [1.0, 4.0, 3.0]

    def test_out_of_bounds_read_traps(self):
        with pytest.raises(TrapError):
            run_serial(
                "kernel f(x: array<float>) -> float { return x[len(x)]; }",
                "f", [farr([1, 2])],
            )

    def test_negative_index_traps(self):
        with pytest.raises(TrapError):
            run_serial(
                "kernel f(x: array<float>) -> float { return x[0 - 1]; }",
                "f", [farr([1, 2])],
            )

    def test_2d_index(self):
        m = Array.from_numpy([[1.0, 2.0], [3.0, 4.0]])
        ret, _ = run_serial(
            "kernel f(m: array2d<float>) -> float { return m[1, 0]; }", "f", [m]
        )
        assert ret == 3.0

    def test_2d_out_of_bounds_traps(self):
        m = Array.zeros2d(2, 3, "float")
        with pytest.raises(TrapError):
            run_serial(
                "kernel f(m: array2d<float>) -> float { return m[0, 3]; }", "f", [m]
            )

    def test_compound_store(self):
        x = iarr([5])
        run_serial("kernel f(x: array<int>) { x[0] += 2; x[0] *= 3; }", "f", [x])
        assert x.data == [21]

    def test_int_elem_stays_int_after_compound_div(self):
        x = iarr([7])
        run_serial("kernel f(x: array<int>) { x[0] /= 2; }", "f", [x])
        assert x.data == [3]
        assert isinstance(x.data[0], int)

    def test_arrays_passed_by_reference(self):
        src = """
        kernel helper(y: array<float>) { y[0] = 42.0; }
        kernel f(x: array<float>) { helper(x); }
        """
        x = farr([0])
        run_serial(src, "f", [x])
        assert x.data == [42.0]

    def test_float_store_of_int_value_materialises_float(self):
        x = farr([0.0])
        run_serial("kernel f(x: array<float>) { x[0] = 3; }", "f", [x])
        assert isinstance(x.data[0], float)


class TestControlFlow:
    def test_for_loop_sum(self):
        ret, _ = run_serial(
            "kernel f(n: int) -> int { let s = 0; "
            "for (i in 0..n) { s += i; } return s; }",
            "f", [10],
        )
        assert ret == 45

    def test_for_step(self):
        ret, _ = run_serial(
            "kernel f() -> int { let s = 0; "
            "for (i in 0..10 step 3) { s += i; } return s; }",
            "f", [],
        )
        assert ret == 0 + 3 + 6 + 9

    def test_nonpositive_step_traps(self):
        with pytest.raises(TrapError):
            run_serial(
                "kernel f(n: int) { for (i in 0..4 step n) { } }", "f", [0]
            )

    def test_break(self):
        ret, _ = run_serial(
            "kernel f() -> int { let s = 0; for (i in 0..100) { "
            "if (i == 5) { break; } s += 1; } return s; }",
            "f", [],
        )
        assert ret == 5

    def test_continue(self):
        ret, _ = run_serial(
            "kernel f() -> int { let s = 0; for (i in 0..10) { "
            "if (i % 2 == 0) { continue; } s += 1; } return s; }",
            "f", [],
        )
        assert ret == 5

    def test_while(self):
        ret, _ = run_serial(
            "kernel f(n: int) -> int { let c = 0; "
            "while (n > 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } "
            "c += 1; } return c; }",
            "f", [27],
        )
        assert ret == 111  # Collatz steps for 27

    def test_early_return_from_nested_loop(self):
        ret, _ = run_serial(
            "kernel f() -> int { for (i in 0..10) { for (j in 0..10) { "
            "if (i * j == 12) { return i * 100 + j; } } } return -1; }",
            "f", [],
        )
        assert ret == 206  # i=2, j=6 first

    def test_infinite_loop_exhausts_fuel(self):
        with pytest.raises(FuelExhausted):
            run_serial(
                "kernel f() -> int { let s = 0; while (true) { s += 1; } return s; }",
                "f", [], fuel=50_000,
            )

    def test_recursion_supported(self):
        ret, _ = run_serial(
            "kernel fib(n: int) -> int { if (n < 2) { return n; } "
            "return fib(n - 1) + fib(n - 2); }",
            "fib", [12],
        )
        assert ret == 144


class TestBuiltins:
    def test_math(self):
        ret, _ = run_serial(
            "kernel f() -> float { return sqrt(16.0) + abs(0.0 - 2.0) + pow(2.0, 3.0); }",
            "f", [],
        )
        assert ret == 4.0 + 2.0 + 8.0

    def test_sqrt_negative_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() -> float { return sqrt(0.0 - 1.0); }", "f", [])

    def test_log_domain_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() -> float { return log(0.0); }", "f", [])

    def test_floor_ceil(self):
        ret, _ = run_serial(
            "kernel f() -> float { return floor(2.7) + ceil(2.1); }", "f", []
        )
        assert ret == 5.0

    def test_int_cast_truncates(self):
        ret, _ = run_serial("kernel f() -> int { return int(2.9); }", "f", [])
        assert ret == 2

    def test_alloc_zeroed(self):
        ret, _ = run_serial(
            "kernel f() -> float { let a = alloc_float(4); return a[3]; }", "f", []
        )
        assert ret == 0.0

    def test_alloc_negative_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() { let a = alloc_float(0 - 1); }", "f", [])

    def test_alloc2d(self):
        ret, _ = run_serial(
            "kernel f() -> int { let m = alloc2d_int(3, 5); return rows(m) * cols(m); }",
            "f", [],
        )
        assert ret == 15

    def test_copy_is_deep(self):
        x = farr([1, 2])
        run_serial(
            "kernel f(x: array<float>) { let y = copy(x); y[0] = 9.0; }", "f", [x]
        )
        assert x.data == [1.0, 2.0]

    def test_fill(self):
        x = farr([1, 2, 3])
        run_serial("kernel f(x: array<float>) { fill(x, 7.0); }", "f", [x])
        assert x.data == [7.0] * 3

    def test_sort(self):
        x = farr([3, 1, 2])
        run_serial("kernel f(x: array<float>) { sort(x); }", "f", [x])
        assert x.data == [1.0, 2.0, 3.0]

    def test_swap(self):
        x = iarr([1, 2, 3])
        run_serial("kernel f(x: array<int>) { swap(x, 0, 2); }", "f", [x])
        assert x.data == [3, 2, 1]

    def test_trig(self):
        ret, _ = run_serial(
            "kernel f() -> float { return sin(0.0) + cos(0.0) + exp(0.0); }", "f", []
        )
        assert ret == pytest.approx(2.0)

    def test_exp_overflow_traps(self):
        with pytest.raises(TrapError):
            run_serial("kernel f() -> float { return exp(1000.0); }", "f", [])


class TestCost:
    def test_cost_accumulates(self):
        _, ctx = run_serial(
            "kernel f(x: array<float>) { for (i in 0..len(x)) { x[i] = 0.0; } }",
            "f", [farr(range(100))],
        )
        assert ctx.cost > 100  # at least one unit per iteration

    def test_cost_scales_with_work(self):
        _, small = run_serial(
            "kernel f(x: array<float>) { for (i in 0..len(x)) { x[i] = 0.0; } }",
            "f", [farr(range(100))],
        )
        _, large = run_serial(
            "kernel f(x: array<float>) { for (i in 0..len(x)) { x[i] = 0.0; } }",
            "f", [farr(range(1000))],
        )
        assert large.cost > 5 * small.cost

    def test_work_scale_multiplies_sim_time_not_cost(self):
        _, a = run_serial("kernel f() { for (i in 0..100) { } }", "f", [])
        _, b = run_serial("kernel f() { for (i in 0..100) { } }", "f", [],
                          work_scale=64)
        assert a.cost == b.cost
        assert b.sim_seconds() == pytest.approx(64 * a.sim_seconds())

    def test_sort_cost_superlinear(self):
        _, a = run_serial("kernel f(x: array<float>) { sort(x); }", "f",
                          [farr(range(100))])
        _, b = run_serial("kernel f(x: array<float>) { sort(x); }", "f",
                          [farr(range(1000))])
        assert b.cost > 10 * a.cost
