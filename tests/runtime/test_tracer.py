"""Direct unit tests of the sampled race detector."""

import pytest

from repro.lang.errors import DataRaceError
from repro.runtime import Array, Tracer
from repro.runtime.tracer import ATOMIC, CRITICAL, PLAIN


@pytest.fixture
def arr():
    return Array.zeros(64, "float")


class TestConflicts:
    def test_write_write_conflict(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 5)
        t.begin_iteration(1)
        t.write(arr, 5)
        with pytest.raises(DataRaceError):
            t.check("loop")

    def test_read_after_write_conflict(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 3)
        t.begin_iteration(1)
        t.read(arr, 3)
        with pytest.raises(DataRaceError):
            t.check("loop")

    def test_write_after_read_conflict(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.read(arr, 3)
        t.begin_iteration(1)
        t.write(arr, 3)
        with pytest.raises(DataRaceError):
            t.check("loop")

    def test_same_iteration_ok(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.read(arr, 3)
        t.write(arr, 3)
        t.write(arr, 3)
        t.check("loop")

    def test_disjoint_indices_ok(self, arr):
        t = Tracer(10)
        for i in range(10):
            t.begin_iteration(i)
            t.read(arr, i)
            t.write(arr, i)
        t.check("loop")

    def test_shared_reads_ok(self, arr):
        t = Tracer(10)
        for i in range(10):
            t.begin_iteration(i)
            t.read(arr, 0)
        t.check("loop")

    def test_distinct_arrays_do_not_conflict(self):
        a, b = Array.zeros(8, "float"), Array.zeros(8, "float")
        t = Tracer(4)
        t.begin_iteration(0)
        t.write(a, 0)
        t.begin_iteration(1)
        t.write(b, 0)
        t.check("loop")


class TestProtection:
    def test_atomic_atomic_ok(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 0, ATOMIC)
        t.begin_iteration(1)
        t.write(arr, 0, ATOMIC)
        t.check("loop")

    def test_atomic_plain_conflicts(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 0, ATOMIC)
        t.begin_iteration(1)
        t.write(arr, 0, PLAIN)
        with pytest.raises(DataRaceError):
            t.check("loop")

    def test_critical_critical_ok(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 0, CRITICAL)
        t.begin_iteration(1)
        t.write(arr, 0, CRITICAL)
        t.check("loop")

    def test_contention_stats(self, arr):
        t = Tracer(10)
        for i in range(10):
            t.begin_iteration(i)
            t.write(arr, i % 3, ATOMIC)
        total, distinct = t.contention_stats()
        assert total == 10
        assert distinct == 3


class TestSampling:
    def test_windows_cover_prefix_and_middle(self):
        t = Tracer(1000)
        (lo1, hi1), (lo2, hi2) = t.windows
        assert lo1 == 0 and hi1 > 0
        assert lo2 >= 500 - 48 and hi2 <= 1000

    def test_accesses_outside_windows_ignored(self, arr):
        t = Tracer(1000)
        t.begin_iteration(200)  # outside both windows
        t.write(arr, 0)
        t.begin_iteration(201)
        t.write(arr, 0)
        t.check("loop")  # unsampled: not detected (by design)

    def test_adjacent_conflicts_in_prefix_window_caught(self, arr):
        t = Tracer(1000)
        t.begin_iteration(0)
        t.write(arr, 1)
        t.begin_iteration(1)
        t.read(arr, 1)
        with pytest.raises(DataRaceError):
            t.check("loop")

    def test_first_race_reported(self, arr):
        t = Tracer(10)
        t.begin_iteration(0)
        t.write(arr, 0)
        t.begin_iteration(1)
        t.write(arr, 0)
        t.write(arr, 1)  # after the race flag is set: ignored
        with pytest.raises(DataRaceError, match="index 0"):
            t.check("loop")
