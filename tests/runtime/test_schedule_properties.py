"""Property-based tests for the loop scheduling time models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import dynamic_chunk_time, static_chunk_time

costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1, max_size=200,
).map(lambda xs: np.asarray(xs))


@settings(max_examples=120, deadline=None)
@given(costs=costs_strategy, threads=st.integers(1, 64))
def test_static_matches_explicit_ceil_chunking(costs, threads):
    """The cumsum implementation equals OpenMP's ceil-chunk partition
    computed the slow, obvious way."""
    n = len(costs)
    chunk = -(-n // threads)
    expected = max(
        (float(costs[i:i + chunk].sum()) for i in range(0, n, chunk)),
        default=float(costs.sum()),
    )
    assert static_chunk_time(costs, threads) == pytest.approx(expected)


@settings(max_examples=120, deadline=None)
@given(costs=costs_strategy, threads=st.integers(1, 64))
def test_static_bounds(costs, threads):
    t = static_chunk_time(costs, threads)
    total = float(costs.sum())
    n = len(costs)
    chunk = -(-n // threads)
    used = -(-n // chunk)
    assert total / used - 1e-9 <= t <= total + 1e-9
    assert t >= float(costs.max()) - 1e-9


@settings(max_examples=120, deadline=None)
@given(costs=costs_strategy, threads=st.integers(1, 64))
def test_static_never_worse_than_serial(costs, threads):
    # ceil-chunking is not strictly monotone in T (a famous OpenMP
    # footgun), but it never exceeds the serial total
    assert static_chunk_time(costs, threads) <= float(costs.sum()) + 1e-9


@settings(max_examples=120, deadline=None)
@given(costs=costs_strategy, threads=st.integers(2, 64),
       dispatch=st.floats(0.0, 10.0))
def test_dynamic_lower_bound_properties(costs, threads, dispatch):
    t = dynamic_chunk_time(costs, threads, dispatch)
    # never beats perfect balance without dispatch, never beats the
    # largest single iteration
    assert t >= float(costs.sum()) / threads - 1e-9
    assert t >= float(costs.max()) - 1e-9


@settings(max_examples=80, deadline=None)
@given(costs=costs_strategy, threads=st.integers(2, 32))
def test_dynamic_beats_static_on_front_loaded_work(costs, threads):
    """With a heavy head and zero dispatch cost, dynamic scheduling can
    only do as well or better than contiguous static chunks."""
    skewed = np.sort(costs)[::-1]
    d = dynamic_chunk_time(skewed, threads, dispatch=0.0)
    s = static_chunk_time(skewed, threads)
    assert d <= s + 1e-9


@settings(max_examples=60, deadline=None)
@given(costs=costs_strategy)
def test_single_thread_is_exact_total(costs):
    assert static_chunk_time(costs, 1) == pytest.approx(float(costs.sum()))
    assert dynamic_chunk_time(costs, 1, 5.0) == pytest.approx(
        float(costs.sum()))
