"""Additional GPU runtime coverage: block sizes, dialect parity of
results, result determinism, and warp divergence bookkeeping."""

import pytest

from repro.runtime import DEFAULT_MACHINE, Array, launch

from .helpers import compiled, farr, iarr

SCALE2 = """
kernel f(x: array<float>) {
    let i = block_idx() * block_dim() + thread_idx();
    if (i < len(x)) {
        x[i] = x[i] * 2.0;
    }
}
"""


class TestLaunchConfigs:
    @pytest.mark.parametrize("block", [1, 7, 32, 256, 1024])
    def test_any_block_size_correct(self, block):
        x = farr(range(100))
        res = launch(compiled(SCALE2), "f", [x], 100, DEFAULT_MACHINE,
                     block_size=block)
        assert res.error is None
        assert x.data == [2.0 * i for i in range(100)]

    def test_more_threads_than_elements_guarded(self):
        x = farr(range(10))
        res = launch(compiled(SCALE2), "f", [x], 5000, DEFAULT_MACHINE)
        assert res.error is None
        assert x.data == [2.0 * i for i in range(10)]

    def test_results_identical_across_dialects(self):
        xa, xb = farr(range(64)), farr(range(64))
        ra = launch(compiled(SCALE2), "f", [xa], 64, DEFAULT_MACHINE,
                    dialect="cuda")
        rb = launch(compiled(SCALE2), "f", [xb], 64, DEFAULT_MACHINE,
                    dialect="hip")
        assert ra.error is None and rb.error is None
        assert xa.data == xb.data  # values agree; only timing differs
        assert ra.sim_seconds != rb.sim_seconds

    def test_repeat_launches_bit_identical_time(self):
        times = set()
        for _ in range(3):
            x = farr(range(256))
            res = launch(compiled(SCALE2), "f", [x], 256, DEFAULT_MACHINE,
                         work_scale=64)
            times.add(res.sim_seconds)
        assert len(times) == 1


class TestBlockIdentity:
    def test_grid_dim_consistent_with_block_size(self):
        src = """
        kernel f(out: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i == 0) {
                out[0] = grid_dim();
                out[1] = block_dim();
            }
        }
        """
        out = iarr([0, 0])
        res = launch(compiled(src), "f", [out], 1000, DEFAULT_MACHINE,
                     block_size=128)
        assert res.error is None
        assert out.data == [8, 128]  # ceil(1000/128) = 8 blocks

    def test_every_thread_has_unique_gid(self):
        src = """
        kernel f(seen: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(seen)) {
                seen[i] += 1;
            }
        }
        """
        seen = iarr([0] * 300)
        res = launch(compiled(src), "f", [seen], 300, DEFAULT_MACHINE,
                     block_size=64)
        assert res.error is None
        assert seen.data == [1] * 300
