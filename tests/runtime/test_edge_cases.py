"""Edge-case coverage for runtime corners not hit by the main suites."""

import pytest

from repro.lang import compile_source
from repro.lang.errors import MPIUsageError, RuntimeFailure, TrapError
from repro.runtime import DEFAULT_MACHINE, Array, run_mpi

from .helpers import compiled, farr, run_kokkos, run_omp, run_serial


class TestOmpClauses:
    def test_num_threads_caps_scaling(self):
        src = """
        kernel f(x: array<float>) -> float {
            let s = 0.0;
            pragma omp parallel for reduction(+: s) num_threads(4)
            for (i in 0..len(x)) {
                s += x[i];
            }
            return s;
        }
        """
        _, ctx = run_omp(src, "f", [farr(range(4096))], work_scale=512)
        capped = ctx.sim_seconds(32)
        four = ctx.sim_seconds(4)
        # beyond the cap no further speedup materialises
        assert capped == pytest.approx(four, rel=0.05)

    def test_guided_schedule_correct(self):
        src = """
        kernel f(x: array<float>) -> float {
            let s = 0.0;
            pragma omp parallel for reduction(+: s) schedule(guided)
            for (i in 0..len(x)) {
                s += x[i];
            }
            return s;
        }
        """
        ret, _ = run_omp(src, "f", [farr(range(100))])
        assert ret == sum(range(100))

    def test_atomic_pragma_on_2d_target(self):
        src = """
        kernel f(m: array2d<float>) {
            pragma omp parallel for
            for (i in 0..100) {
                pragma omp atomic
                m[0, 0] += 1.0;
            }
        }
        """
        m = Array.zeros2d(2, 2, "float")
        run_omp(src, "f", [m])
        assert m.data[0] == 100.0

    def test_critical_block_with_control_flow(self):
        src = """
        kernel f(x: array<float>) -> float {
            let worst = -1e30;
            pragma omp parallel for
            for (i in 0..len(x)) {
                pragma omp critical
                {
                    if (x[i] > worst) {
                        worst = x[i];
                    }
                }
            }
            return worst;
        }
        """
        ret, _ = run_omp(src, "f", [farr([3, 9, 1])])
        assert ret == 9.0


class TestKokkosEdges:
    def test_scan_prod_rejected(self):
        with pytest.raises(RuntimeFailure):
            run_kokkos(
                'kernel f(x: array<float>, out: array<float>) { '
                'parallel_scan_inclusive(len(x), "prod", (i) => x[i], out); }',
                "f", [farr([1, 2]), farr([0, 0])],
            )

    def test_zero_extent_patterns(self):
        ret, _ = run_kokkos(
            'kernel f(x: array<float>) -> float { '
            'return parallel_reduce(0, "sum", (i) => x[i]); }',
            "f", [farr([1, 2])],
        )
        assert ret == 0.0

    def test_negative_extent_traps(self):
        with pytest.raises(TrapError):
            run_kokkos(
                "kernel f(x: array<float>) { "
                "parallel_for(0 - 1, (i) => { x[0] = 1.0; }); }",
                "f", [farr([1])],
            )

    def test_nested_pattern_runs_serially(self):
        src = """
        kernel f(m: array2d<float>) {
            parallel_for(rows(m), (i) => {
                parallel_for(cols(m), (j) => {
                    m[i, j] = float(i * 10 + j);
                });
            });
        }
        """
        m = Array.zeros2d(2, 3, "float")
        run_kokkos(src, "f", [m])
        assert m.data == [0.0, 1.0, 2.0, 10.0, 11.0, 12.0]


class TestMPIEdges:
    def test_send_to_self(self):
        src = """
        kernel f(x: array<float>) -> float {
            mpi_send(7.5, mpi_rank(), 0);
            return mpi_recv_float(mpi_rank(), 0);
        }
        """
        res = run_mpi(compiled(src), "f", [farr([0])], 2, DEFAULT_MACHINE)
        assert res.error is None and res.ret == 7.5

    def test_scan_int_kind(self):
        src = """
        kernel f(x: array<float>) -> int {
            return mpi_scan_int(2, "prod");
        }
        """
        res = run_mpi(compiled(src), "f", [farr([0])], 3, DEFAULT_MACHINE)
        assert res.error is None
        assert res.ret == 2  # rank 0's inclusive prefix product

    def test_bcast_array_length_mismatch(self):
        src = """
        kernel f(x: array<float>) {
            if (mpi_rank() == 0) {
                let mine = alloc_float(4);
                mpi_bcast_array(mine, 0);
            } else {
                let mine = alloc_float(8);
                mpi_bcast_array(mine, 0);
            }
        }
        """
        res = run_mpi(compiled(src), "f", [farr([0])], 2, DEFAULT_MACHINE)
        assert isinstance(res.error, MPIUsageError)

    def test_gather_length_mismatch(self):
        src = """
        kernel f(x: array<float>) {
            let local = alloc_float(mpi_rank() + 1);
            let got = mpi_gather_array(local, 0);
        }
        """
        res = run_mpi(compiled(src), "f", [farr([0])], 2, DEFAULT_MACHINE)
        assert isinstance(res.error, MPIUsageError)

    def test_reduce_prod(self):
        src = """
        kernel f(x: array<float>) -> float {
            return mpi_allreduce_float(2.0, "prod");
        }
        """
        res = run_mpi(compiled(src), "f", [farr([0])], 5, DEFAULT_MACHINE)
        assert res.ret == 32.0

    def test_two_rank_hybrid_barrier_heavy(self):
        src = """
        kernel f(x: array<float>) -> float {
            let s = 0.0;
            pragma omp parallel for reduction(+: s)
            for (i in 0..len(x)) {
                s += x[i];
            }
            mpi_barrier();
            mpi_barrier();
            return mpi_allreduce_float(s, "sum");
        }
        """
        res = run_mpi(compiled(src), "f", [farr([1, 2, 3])], 2,
                      DEFAULT_MACHINE, threads_per_rank=2)
        assert res.ret == 12.0  # both ranks sum the replicated input


class TestSerialRuntimeGates:
    def test_kokkos_in_serial_runtime_fails_loudly(self):
        # the harness link check normally prevents this; the runtime must
        # still refuse rather than silently do something
        with pytest.raises(RuntimeFailure, match="Kokkos"):
            run_serial(
                "kernel f(x: array<float>) { "
                "parallel_for(len(x), (i) => { x[i] = 0.0; }); }",
                "f", [farr([1])],
            )

    def test_mpi_in_serial_runtime_fails_loudly(self):
        with pytest.raises(RuntimeFailure, match="MPI"):
            run_serial(
                "kernel f(x: array<float>) -> int { return mpi_rank(); }",
                "f", [farr([1])],
            )
