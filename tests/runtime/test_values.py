"""Tests for runtime values and hypothesis properties of Array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Array, nbytes
from repro.runtime.values import deep_copy_value


class TestArray:
    def test_zeros(self):
        a = Array.zeros(4, "float")
        assert a.data == [0.0] * 4
        assert a.shape == (4,)

    def test_zeros2d_flat_row_major(self):
        a = Array.zeros2d(2, 3, "int")
        assert len(a.data) == 6
        assert a.shape == (2, 3)
        assert a.ndim == 2

    def test_numpy_round_trip_1d(self):
        src = np.array([1.5, -2.0, 3.25])
        a = Array.from_numpy(src)
        assert a.elem == "float"
        np.testing.assert_array_equal(a.to_numpy(), src)

    def test_numpy_round_trip_2d(self):
        src = np.arange(12, dtype=np.int64).reshape(3, 4)
        a = Array.from_numpy(src)
        assert a.elem == "int"
        assert a.shape == (3, 4)
        np.testing.assert_array_equal(a.to_numpy(), src)

    def test_from_numpy_rejects_3d(self):
        with pytest.raises(ValueError):
            Array.from_numpy(np.zeros((2, 2, 2)))

    def test_copy_independent(self):
        a = Array.from_list([1.0, 2.0], "float")
        b = a.copy()
        b.data[0] = 9.0
        assert a.data[0] == 1.0

    def test_uids_unique(self):
        uids = {Array.zeros(1, "int").uid for _ in range(100)}
        assert len(uids) == 100

    def test_nbytes(self):
        assert nbytes(Array.zeros(10, "float")) == 80
        assert nbytes(3.0) == 8

    def test_deep_copy_value(self):
        a = Array.from_list([1, 2], "int")
        b = deep_copy_value(a)
        assert b is not a and b.data == a.data
        assert deep_copy_value(5) == 5


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=0, max_size=50))
def test_numpy_round_trip_property(values):
    a = Array.from_list([float(v) for v in values], "float")
    np.testing.assert_array_equal(
        a.to_numpy(), np.array(values, dtype=np.float64))
    b = Array.from_numpy(a.to_numpy())
    assert b.data == a.data


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 12), st.integers(1, 12))
def test_2d_flat_indexing_property(r, c):
    src = np.arange(r * c, dtype=np.float64).reshape(r, c)
    a = Array.from_numpy(src)
    for i in range(r):
        for j in range(c):
            assert a.data[i * c + j] == src[i, j]
