"""White-box tests for closure-compiler internals."""

import pytest

from repro.lang import parse
from repro.lang.errors import TrapError
from repro.runtime.compile import (
    _collect_outer_writes,
    _idiv,
    _imod,
)


class TestCDivision:
    @pytest.mark.parametrize("a,b,q", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3),
        (6, 3, 2), (0, 5, 0), (1, 1, 1),
    ])
    def test_idiv_truncates_toward_zero(self, a, b, q):
        assert _idiv(a, b) == q

    @pytest.mark.parametrize("a,b,r", [
        (7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1), (6, 3, 0),
    ])
    def test_imod_sign_of_dividend(self, a, b, r):
        assert _imod(a, b) == r

    def test_division_identity(self):
        # a == idiv(a,b)*b + imod(a,b) for all combinations
        for a in range(-20, 21):
            for b in list(range(-5, 0)) + list(range(1, 6)):
                assert _idiv(a, b) * b + _imod(a, b) == a

    def test_zero_divisor_traps(self):
        with pytest.raises(TrapError):
            _idiv(1, 0)
        with pytest.raises(TrapError):
            _imod(1, 0)


def _loop_of(src: str):
    """Extract the first parallel-for loop of a kernel body."""
    prog = parse(src)
    for stmt in prog.kernels[0].body.stmts:
        if type(stmt).__name__ == "OmpParallelFor":
            return stmt.loop
    raise AssertionError("no parallel for found")


class TestOuterWriteAnalysis:
    def test_shared_scalar_detected(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            let t = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                t = x[i];
            }
        }
        """)
        assert _collect_outer_writes(loop) == {"t"}

    def test_loop_local_let_is_private(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                let t = x[i];
                t = t * 2.0;
                x[i] = t;
            }
        }
        """)
        assert _collect_outer_writes(loop) == set()

    def test_nested_loop_var_private(self):
        loop = _loop_of("""
        kernel f(m: array2d<float>) {
            pragma omp parallel for
            for (i in 0..rows(m)) {
                for (j in 0..cols(m)) {
                    m[i, j] = 0.0;
                }
            }
        }
        """)
        assert _collect_outer_writes(loop) == set()

    def test_critical_protected_write_excluded(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            let total = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                pragma omp critical
                {
                    total += x[i];
                }
            }
        }
        """)
        assert _collect_outer_writes(loop) == set()

    def test_atomic_protected_write_excluded(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            let total = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                pragma omp atomic
                total += x[i];
            }
        }
        """)
        assert _collect_outer_writes(loop) == set()

    def test_lambda_params_private(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                parallel_for(4, (q) => {
                    x[q] = 0.0;
                });
            }
        }
        """)
        assert _collect_outer_writes(loop) == set()

    def test_multiple_shared_writes(self):
        loop = _loop_of("""
        kernel f(x: array<float>) {
            let a = 0.0;
            let b = 0.0;
            pragma omp parallel for
            for (i in 0..len(x)) {
                a = x[i];
                b = a + 1.0;
            }
        }
        """)
        assert _collect_outer_writes(loop) == {"a", "b"}
