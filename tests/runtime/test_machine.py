"""Tests for the machine/cost models."""

import pytest

from repro.runtime import A100, MI50, CPUSpec, DEFAULT_MACHINE, InterconnectSpec


class TestCPUSpec:
    def test_region_overhead_single_thread_free(self):
        assert DEFAULT_MACHINE.cpu.omp_region_overhead(1) == 0.0

    def test_region_overhead_grows_linearly_with_threads(self):
        cpu = DEFAULT_MACHINE.cpu
        o2, o16, o64 = (cpu.omp_region_overhead(t) for t in (2, 16, 64))
        assert o2 < o16 < o64
        # fork/join dominates: near-linear growth in thread count
        assert o64 / o16 > 2.5

    def test_kokkos_overhead_sublinear(self):
        cpu = DEFAULT_MACHINE.cpu
        k2, k64 = cpu.kokkos_pattern_overhead(2), cpu.kokkos_pattern_overhead(64)
        assert k64 / k2 < 1.6  # persistent pool: only the log term grows

    def test_kokkos_vs_omp_crossover(self):
        """Below some thread count OpenMP regions are cheaper; above it the
        Kokkos pool wins — the mechanism behind Figure 5's contrast."""
        cpu = DEFAULT_MACHINE.cpu
        assert cpu.omp_region_overhead(2) < cpu.kokkos_pattern_overhead(2)
        assert cpu.omp_region_overhead(64) > cpu.kokkos_pattern_overhead(64)


class TestInterconnect:
    def test_intra_node_discount(self):
        net = DEFAULT_MACHINE.net
        same = net.point_to_point(1024, 0, 1)
        cross = net.point_to_point(1024, 0, net.cores_per_node)
        assert same < cross

    def test_message_size_matters(self):
        net = DEFAULT_MACHINE.net
        assert net.point_to_point(1 << 20, 0, 64) > net.point_to_point(8, 0, 64)

    def test_collectives_scale_logarithmically(self):
        net = DEFAULT_MACHINE.net
        t16 = net.collective("allreduce", 8, 16)
        t256 = net.collective("allreduce", 8, 256)
        assert t256 / t16 == pytest.approx(2.0)  # log2(256)/log2(16)

    def test_single_rank_collective_free(self):
        assert DEFAULT_MACHINE.net.collective("allreduce", 8, 1) == 0.0

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_MACHINE.net.collective("alltoallv", 8, 4)


class TestGPUSpecs:
    def test_mi50_slower_than_a100(self):
        assert MI50.thread_cycle > A100.thread_cycle
        assert MI50.concurrent_warps < A100.concurrent_warps

    def test_serial_cycle_much_slower_than_throughput(self):
        for spec in (A100, MI50):
            assert spec.serial_cycle > 10 * spec.thread_cycle

    def test_machine_overrides(self):
        m = DEFAULT_MACHINE.with_overrides(fuel=123)
        assert m.fuel == 123
        assert DEFAULT_MACHINE.fuel != 123
