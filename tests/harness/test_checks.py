"""Tests for the link and parallel-model usage checks (paper §7.2)."""

import pytest

from repro.harness import link_error, uses_parallel_model
from repro.lang import compile_source

OMP_SRC = """
kernel f(x: array<float>) {
    pragma omp parallel for
    for (i in 0..len(x)) { x[i] = 0.0; }
}
"""

KOKKOS_SRC = """
kernel f(x: array<float>) {
    parallel_for(len(x), (i) => { x[i] = 0.0; });
}
"""

MPI_SRC = """
kernel f(x: array<float>) -> float {
    return mpi_allreduce_float(1.0, "sum");
}
"""

GPU_SRC = """
kernel f(x: array<float>) {
    let i = block_idx() * block_dim() + thread_idx();
    if (i < len(x)) { x[i] = 0.0; }
}
"""

SERIAL_SRC = """
kernel f(x: array<float>) {
    for (i in 0..len(x)) { x[i] = 0.0; }
}
"""

HYBRID_SRC = """
kernel f(x: array<float>) -> float {
    let local = 0.0;
    pragma omp parallel for reduction(+: local)
    for (i in 0..len(x)) { local += x[i]; }
    return mpi_allreduce_float(local, "sum");
}
"""


class TestLinkCheck:
    def test_serial_links_everywhere_basic(self):
        cp = compile_source(SERIAL_SRC)
        for model in ("serial", "openmp", "kokkos", "mpi", "cuda", "hip"):
            assert link_error(cp, model) is None

    def test_omp_pragmas_compile_without_fopenmp(self):
        # pragmas are ignored when OpenMP is not linked — never a link error
        cp = compile_source(OMP_SRC)
        for model in ("serial", "kokkos", "mpi", "cuda"):
            assert link_error(cp, model) is None

    def test_kokkos_requires_kokkos(self):
        cp = compile_source(KOKKOS_SRC)
        assert link_error(cp, "kokkos") is None
        assert link_error(cp, "serial") is not None
        assert link_error(cp, "openmp") is not None
        assert link_error(cp, "cuda") is not None

    def test_mpi_requires_mpi(self):
        cp = compile_source(MPI_SRC)
        assert link_error(cp, "mpi") is None
        assert link_error(cp, "mpi+omp") is None
        assert link_error(cp, "serial") is not None

    def test_gpu_requires_gpu(self):
        cp = compile_source(GPU_SRC)
        assert link_error(cp, "cuda") is None
        assert link_error(cp, "hip") is None
        assert link_error(cp, "openmp") is not None

    def test_atomics_link_everywhere(self):
        cp = compile_source(
            "kernel f(h: array<int>) { atomic_add(h, 0, 1); }"
        )
        for model in ("serial", "openmp", "kokkos", "mpi", "cuda", "hip"):
            assert link_error(cp, model) is None

    def test_error_names_the_offender(self):
        cp = compile_source(MPI_SRC)
        msg = link_error(cp, "serial")
        assert "mpi_allreduce_float" in msg


class TestUsageCheck:
    def test_serial_always_passes(self):
        assert uses_parallel_model(SERIAL_SRC, "serial")

    def test_openmp_detects_pragma(self):
        assert uses_parallel_model(OMP_SRC, "openmp")
        assert not uses_parallel_model(SERIAL_SRC, "openmp")

    def test_kokkos_detects_patterns(self):
        assert uses_parallel_model(KOKKOS_SRC, "kokkos")
        assert not uses_parallel_model(SERIAL_SRC, "kokkos")

    def test_mpi_detects_calls(self):
        assert uses_parallel_model(MPI_SRC, "mpi")
        assert not uses_parallel_model(OMP_SRC, "mpi")

    def test_gpu_detects_intrinsics(self):
        assert uses_parallel_model(GPU_SRC, "cuda")
        assert uses_parallel_model(GPU_SRC, "hip")
        assert not uses_parallel_model(SERIAL_SRC, "cuda")

    def test_hybrid_requires_both(self):
        assert uses_parallel_model(HYBRID_SRC, "mpi+omp")
        assert not uses_parallel_model(MPI_SRC, "mpi+omp")
        assert not uses_parallel_model(OMP_SRC, "mpi+omp")
