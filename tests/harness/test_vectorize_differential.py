"""Golden differential suite: the vectorized tier must be invisible.

Every problem in the benchmark, under all seven execution models, is
evaluated with the tier on and off; the resulting :class:`EvalRun`
records, CSV exports, profiles, and digests must be byte-identical.
Also covers the runner-level plumbing: the fingerprint ignores the tier,
``vec`` telemetry stays out of the serialised run, and the compile cache
serves repeated sources.
"""

import numpy as np
import pytest

from repro import PCGBench, Runner, evaluate_model, load_model
from repro.analysis import to_csv
from repro.analysis.export import profile_csv
from repro.bench import all_problems
from repro.bench.baselines import baseline_source
from repro.bench.registry import PCGBench as Registry
from repro.harness.runner import (
    clear_compile_cache,
    compile_cache_stats,
    compile_sample,
)
from repro.sched.plan import runner_fingerprint

ALL_MODELS = ["serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"]


class TestRunnerPlumbing:
    def test_fingerprint_ignores_vectorize(self):
        # the tier changes throughput, never results: runs from either
        # tier must share journal/cache identities
        assert (runner_fingerprint(Runner(vectorize=True))
                == runner_fingerprint(Runner(vectorize=False)))

    def test_vec_telemetry_on_result(self):
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        prompt = bench.prompts[0]
        runner = Runner()
        src = baseline_source(prompt.problem.name)
        res = runner.evaluate_sample(src, prompt)
        assert res.vec is not None
        assert res.vec["tier"] == "numpy"
        assert res.vec["vectorize"] is True
        off = Runner(vectorize=False).evaluate_sample(src, prompt)
        assert off.vec["tier"] == "scalar"
        assert off.vec["bulk_loops"] == 0

    def test_vec_stripped_from_json(self):
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=2,
                             seed=5)
        some = next(iter(run.prompts.values())).samples[0]
        assert some.vec is not None          # in-memory observability
        assert '"vec"' not in run.to_json()  # never serialised


class TestCompileCache:
    def test_repeat_compiles_hit(self):
        clear_compile_cache()
        src = baseline_source("sum_of_elements")
        p1, r1 = compile_sample(src, "serial")
        p2, r2 = compile_sample(src, "serial")
        assert p1 is not None and r1 is None
        assert p2 is p1                      # content-addressed reuse
        stats = compile_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # a different model is a different link target: its own entry
        compile_sample(src, "openmp")
        assert compile_cache_stats()["misses"] == 2

    def test_failed_compiles_cached_too(self):
        clear_compile_cache()
        prog, reason = compile_sample("kernel broken(", "serial")
        assert prog is None and reason
        prog2, reason2 = compile_sample("kernel broken(", "serial")
        assert prog2 is None and reason2 == reason
        assert compile_cache_stats()["hits"] == 1

    def test_cache_is_bounded(self):
        from repro.harness import runner as runner_mod

        clear_compile_cache()
        for k in range(runner_mod._COMPILE_CACHE_MAX + 20):
            compile_sample(f"kernel k{k}(x: array<float>) {{ fill(x, "
                           f"{k}.0); }}", "serial")
        assert len(runner_mod._COMPILE_CACHE) == runner_mod._COMPILE_CACHE_MAX


@pytest.fixture(scope="module")
def full_bench():
    return Registry(models=ALL_MODELS)


class TestFullDifferential:
    """The acceptance gate: byte-identical EvalRuns, tier on vs off."""

    def test_every_problem_every_model_digest_identical(self, full_bench):
        # correctness-only pass over the whole benchmark (every problem
        # x all seven models, 2 samples each)
        assert {p.name for p in full_bench.problems} \
            == {p.name for p in all_problems()}
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9)
        on = evaluate_model(llm, full_bench,
                            runner=Runner(vectorize=True), **kwargs)
        off = evaluate_model(llm, full_bench,
                             runner=Runner(vectorize=False), **kwargs)
        assert on.to_json() == off.to_json()
        assert on.digest() == off.digest()
        assert to_csv(on) == to_csv(off)
        # and the tier actually did something on the on-side
        bulk = sum(s.vec["bulk_loops"]
                   for pr in on.prompts.values() for s in pr.samples
                   if s.vec)
        assert bulk > 0

    def test_timed_profiled_slice_identical(self):
        # timing + profiling exercise the windowed executors, the
        # parallel_adjust pricing, and prof conservation on both tiers
        bench = Registry(problem_types=["reduce", "transform"],
                         models=ALL_MODELS)
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=9,
                      with_timing=True, profile=True)
        on = evaluate_model(llm, bench, runner=Runner(vectorize=True),
                            **kwargs)
        off = evaluate_model(llm, bench, runner=Runner(vectorize=False),
                             **kwargs)
        assert on.to_json() == off.to_json()
        assert profile_csv(on) == profile_csv(off)

    def test_baselines_all_models_identical(self, full_bench):
        # handwritten baselines through the raw sample pipeline, which
        # covers solution shapes the simulated LLM may not emit
        by_uid = {}
        for vec in (True, False):
            runner = Runner(vectorize=vec)
            for prompt in full_bench.prompts:
                src = baseline_source(prompt.problem.name)
                res = runner.evaluate_sample(src, prompt, with_timing=False)
                by_uid.setdefault(prompt.uid, []).append(
                    (res.status, res.detail))
        for uid, (on, off) in by_uid.items():
            assert on == off, uid


class TestSchedulerTelemetry:
    def test_vec_and_cache_counters_flow_to_telemetry(self):
        from repro.sched.events import Telemetry

        clear_compile_cache()
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        telemetry = Telemetry()
        evaluate_model(load_model("GPT-4"), bench, num_samples=2, seed=5,
                       jobs=1, events=telemetry)
        assert telemetry.vec_bulk_loops > 0
        assert telemetry.vec_bulk_iters >= telemetry.vec_bulk_loops
        total_cache = (telemetry.compile_cache_hits
                       + telemetry.compile_cache_misses)
        assert total_cache > 0

    def test_scheduled_run_digest_matches_serial(self):
        bench = PCGBench(problem_types=["reduce"], models=["openmp"])
        llm = load_model("GPT-4")
        kwargs = dict(num_samples=2, temperature=0.2, seed=7)
        serial = evaluate_model(llm, bench, **kwargs)
        for vec in (True, False):
            sched = evaluate_model(llm, bench, jobs=2,
                                   runner=Runner(vectorize=vec), **kwargs)
            assert sched.to_json() == serial.to_json()
