"""Timing sweeps must tolerate per-configuration failures: a sample that
works at some processor counts and crashes at others yields a partial
times dict (as a crashed job is simply absent from the paper's logs)."""

from repro.bench import all_problems, render_prompt
from repro.harness import Runner, compile_sample


def test_mpi_scatter_partial_grid():
    problem = next(p for p in all_problems() if p.name == "sort_ascending")
    # scatter requires the array length to divide the rank count evenly;
    # 2048 elements divide 4 but not 3
    src = """
    kernel sort_ascending(x: array<float>) {
        let chunk = mpi_scatter_array(x, 0);
        sort(chunk);
        let gathered = mpi_gather_array(chunk, 0);
        if (mpi_rank() == 0) {
            for (i in 0..len(x)) {
                x[i] = gathered[i];
            }
            sort(x);
        }
    }
    """
    runner = Runner(mpi_rank_counts=(3, 4))
    program, err = compile_sample(src, "mpi")
    assert program is not None, err
    times = runner.measure(program, render_prompt(problem, "mpi"))
    assert 4 in times
    assert 3 not in times  # uneven scatter crashed that configuration


def test_serial_measure_single_point():
    problem = next(p for p in all_problems() if p.name == "relu")
    src = """
    kernel relu(x: array<float>) {
        for (i in 0..len(x)) {
            x[i] = max(x[i], 0.0);
        }
    }
    """
    runner = Runner()
    program, _ = compile_sample(src, "serial")
    times = runner.measure(program, render_prompt(problem, "serial"))
    assert set(times) == {1}
    assert times[1] > 0


def test_measure_of_trapping_program_is_empty():
    problem = next(p for p in all_problems() if p.name == "relu")
    src = """
    kernel relu(x: array<float>) {
        pragma omp parallel for
        for (i in 0..len(x) + 1) {
            x[i] = max(x[i], 0.0);
        }
    }
    """
    runner = Runner()
    program, _ = compile_sample(src, "openmp")
    times = runner.measure(program, render_prompt(problem, "openmp"))
    assert times == {}
