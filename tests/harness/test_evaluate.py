"""Tests for the end-to-end evaluator and the results store."""

import pytest

from repro.bench import PCGBench
from repro.harness import EvalCache, EvalRun, Runner, evaluate_model
from repro.models import load_model


@pytest.fixture(scope="module")
def small_run():
    bench = PCGBench(problem_types=["transform"],
                     models=["serial", "openmp", "cuda"])
    llm = load_model("GPT-3.5")
    return evaluate_model(llm, bench, num_samples=4, temperature=0.2, seed=9)


class TestEvaluate:
    def test_covers_all_prompts(self, small_run):
        assert len(small_run.prompts) == 5 * 3

    def test_sample_counts(self, small_run):
        for record in small_run.prompts.values():
            assert len(record.samples) == 4

    def test_statuses_are_known(self, small_run):
        known = {"correct", "build_error", "not_parallel", "static_fail",
                 "runtime_error", "timeout", "wrong_answer"}
        for record in small_run.prompts.values():
            assert set(record.statuses()) <= known

    def test_views(self, small_run):
        assert len(small_run.by_exec_model("serial")) == 5
        assert len(small_run.by_ptype("transform")) == 15
        assert len(small_run.parallel_prompts()) == 10

    def test_json_roundtrip(self, small_run):
        back = EvalRun.from_json(small_run.to_json())
        assert back.llm == small_run.llm
        assert set(back.prompts) == set(small_run.prompts)
        uid = next(iter(back.prompts))
        assert back.prompts[uid].statuses() == small_run.prompts[uid].statuses()

    def test_json_roundtrip_preserves_times(self):
        bench = PCGBench(problem_types=["transform"], models=["openmp"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=2,
                             temperature=0.2, with_timing=True, seed=3)
        back = EvalRun.from_json(run.to_json())
        for uid, record in run.prompts.items():
            assert back.prompts[uid].baseline == record.baseline
            for a, b in zip(back.prompts[uid].samples, record.samples):
                assert a.times == b.times
                assert all(isinstance(k, int) for k in a.times)


class TestCache:
    def test_cache_round_trip(self, tmp_path):
        cache = EvalCache(cache_dir=str(tmp_path))
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        llm = load_model("CodeLlama-7B")
        first = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        second = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                  tag="unit")
        assert second.to_json() == first.to_json()

    def test_env_sample_cap(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SAMPLES", "2")
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        run = evaluate_model(load_model("CodeLlama-7B"), bench,
                             num_samples=50)
        assert run.num_samples == 2
