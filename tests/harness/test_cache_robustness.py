"""Satellite coverage: version-mismatched / corrupt caches regenerate
instead of crashing, REPRO_SAMPLES is validated, and the baseline memo
keys on machine value rather than object identity."""

import json

import pytest

from repro.bench import PCGBench, all_problems
from repro.harness import (
    CacheFormatError,
    ConfigurationError,
    EvalCache,
    EvalRun,
    Runner,
)
from repro.harness.evaluate import effective_samples
from repro.models import load_model
from repro.runtime import Machine


@pytest.fixture()
def bench():
    return PCGBench(problem_types=["reduce"], models=["serial"])


@pytest.fixture()
def llm():
    return load_model("CodeLlama-7B")


class TestCacheRobustness:
    def _cache_file(self, tmp_path):
        files = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        assert len(files) == 1
        return files[0]

    def test_corrupt_cache_is_regenerated(self, tmp_path, bench, llm):
        cache = EvalCache(cache_dir=str(tmp_path))
        first = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        self._cache_file(tmp_path).write_text("{truncated garba")
        again = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        assert again.to_json() == first.to_json()

    def test_version_mismatch_is_regenerated(self, tmp_path, bench, llm):
        cache = EvalCache(cache_dir=str(tmp_path))
        first = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        path = self._cache_file(tmp_path)
        stale = json.loads(path.read_text())
        stale["format_version"] = 999
        path.write_text(json.dumps(stale))
        again = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        assert again.to_json() == first.to_json()

    def test_pre_versioning_cache_is_regenerated(self, tmp_path, bench, llm):
        cache = EvalCache(cache_dir=str(tmp_path))
        first = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        path = self._cache_file(tmp_path)
        legacy = json.loads(path.read_text())
        del legacy["format_version"]          # files written before PR 1
        path.write_text(json.dumps(legacy))
        again = cache.get_or_run(llm, bench, num_samples=3, temperature=0.2,
                                 tag="unit")
        assert again.to_json() == first.to_json()

    @pytest.mark.parametrize("text", [
        "not json at all",
        "[1, 2, 3]",
        '{"format_version": 1}',
        '{"format_version": 1, "prompts": {"x": {"bad": true}}}',
    ])
    def test_from_json_raises_cache_format_error(self, text):
        with pytest.raises(CacheFormatError):
            EvalRun.from_json(text)


class TestEffectiveSamples:
    def test_unset_passes_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        assert effective_samples(40) == 40

    def test_empty_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "")
        assert effective_samples(40) == 40

    def test_cap_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "4")
        assert effective_samples(40) == 4
        assert effective_samples(3) == 3
        assert effective_samples(1) == 2      # floor of 2 is preserved

    @pytest.mark.parametrize("bad", ["abc", "4.5", "3x", "--2"])
    def test_non_integer_names_the_env_var(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SAMPLES", bad)
        with pytest.raises(ConfigurationError, match="REPRO_SAMPLES"):
            effective_samples(40)

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SAMPLES", bad)
        with pytest.raises(ConfigurationError, match="REPRO_SAMPLES"):
            effective_samples(40)


class TestBaselineCacheKey:
    def test_equal_machines_share_entries_distinct_machines_do_not(self):
        problem = next(p for p in all_problems()
                       if p.name == "sum_of_elements")
        default = Runner()
        same_value = Runner(machine=Machine())   # equal value, new object
        assert default.baseline_time(problem) == \
            same_value.baseline_time(problem)
        slower = Runner(machine=Machine().with_overrides(
            cpu=Machine().cpu.__class__(cycle=2.0e-9)))
        assert slower.baseline_time(problem) != \
            default.baseline_time(problem)
