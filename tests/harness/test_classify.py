"""Status classification: every MiniPar failure maps to a harness status;
non-MiniPar exceptions (harness bugs) must propagate, never be recorded
as a model failure."""

import pytest

from repro.harness.runner import _classify
from repro.lang.errors import (
    DataRaceError,
    DeadlockError,
    FuelExhausted,
    MiniParError,
    MPIUsageError,
    RuntimeFailure,
    SimTimeLimitExceeded,
    TrapError,
)


@pytest.mark.parametrize("exc,status", [
    (FuelExhausted("x"), "timeout"),
    (SimTimeLimitExceeded("x"), "timeout"),
    (DataRaceError("x"), "runtime_error"),
    (DeadlockError("x"), "runtime_error"),
    (MPIUsageError("x"), "runtime_error"),
    (TrapError("x"), "runtime_error"),
    (RuntimeFailure("x"), "runtime_error"),
    (MiniParError("x"), "runtime_error"),
])
def test_minipar_failures_classified(exc, status):
    assert _classify(exc) == status


@pytest.mark.parametrize("exc", [
    KeyError("harness bug"),
    AttributeError("harness bug"),
    ZeroDivisionError(),
])
def test_harness_bugs_propagate(exc):
    with pytest.raises(type(exc)):
        _classify(exc)
