"""Satellite coverage: one compact matrix driving ``evaluate_sample`` to
every terminal status, plus an exact EvalRun JSON round trip."""

import pytest

from repro.bench import PCGBench, all_problems, render_prompt
from repro.faults import FaultPlan, FaultRule, injector
from repro.harness import FORMAT_VERSION, EvalRun, Runner, evaluate_model
from repro.models import load_model

_OK_SERIAL = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

_WRONG = """
kernel sum_of_elements(x: array<float>) -> float {
    return 0.0;
}
"""

_TRAP = """
kernel sum_of_elements(x: array<float>) -> float {
    return x[len(x)];
}
"""

_SPIN = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    while (total >= 0.0) {
        total += 1.0;
    }
    return total;
}
"""

_RACY_OMP = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

#: (case label, execution model, source, expected status)
MATRIX = [
    ("correct", "serial", _OK_SERIAL, "correct"),
    ("build_error", "serial", "kernel sum_of_elements(", "build_error"),
    ("not_parallel", "openmp", _OK_SERIAL, "not_parallel"),
    ("static_fail", "openmp", _RACY_OMP, "static_fail"),
    ("trap", "serial", _TRAP, "runtime_error"),
    ("timeout", "serial", _SPIN, "timeout"),
    ("wrong_answer", "serial", _WRONG, "wrong_answer"),
]


@pytest.fixture(scope="module")
def runner():
    return Runner(correctness_trials=2)


@pytest.mark.parametrize("label,model,source,expected",
                         MATRIX, ids=[m[0] for m in MATRIX])
def test_terminal_status(runner, label, model, source, expected):
    problem = next(p for p in all_problems() if p.name == "sum_of_elements")
    prompt = render_prompt(problem, model)
    result = runner.evaluate_sample(source, prompt)
    assert result.status == expected


def test_every_terminal_status_is_covered():
    assert {m[3] for m in MATRIX} == {
        "correct", "build_error", "not_parallel", "static_fail",
        "runtime_error", "timeout", "wrong_answer"}


#: the two resilience lanes need an installed injector to be reachable:
#: (label, fault rule, with_timing, expected status)
FAULT_MATRIX = [
    ("system_error",
     FaultRule(point="harness.flake", action="raise", occurrences=None),
     False, "system_error"),
    ("degraded",
     FaultRule(point="harness.timing", action="fault"),
     True, "degraded"),
]


@pytest.mark.parametrize("label,rule,with_timing,expected",
                         FAULT_MATRIX, ids=[m[0] for m in FAULT_MATRIX])
def test_resilience_lane_status(runner, label, rule, with_timing, expected):
    problem = next(p for p in all_problems() if p.name == "sum_of_elements")
    prompt = render_prompt(problem, "serial")
    with injector(FaultPlan(rules=(rule,))):
        result = runner.evaluate_sample(_OK_SERIAL, prompt,
                                        with_timing=with_timing)
    assert result.status == expected


def test_full_documented_status_set():
    """The SampleRecord docstring's status vocabulary, in one place."""
    assert {m[3] for m in MATRIX} | {m[3] for m in FAULT_MATRIX} == {
        "correct", "build_error", "not_parallel", "static_fail",
        "runtime_error", "timeout", "wrong_answer",
        "system_error", "degraded"}


def test_racy_sample_without_screen_is_runtime_error():
    """--no-static-screen falls through to dynamic Tracer conviction."""
    problem = next(p for p in all_problems() if p.name == "sum_of_elements")
    prompt = render_prompt(problem, "openmp")
    runner = Runner(correctness_trials=2, static_screen=False)
    result = runner.evaluate_sample(_RACY_OMP, prompt)
    assert result.status == "runtime_error"
    assert result.diagnostics == []


class TestNoStaticScreen:
    def test_screen_is_byte_transparent_on_clean_samples(self):
        """When nothing fires, the screen must not perturb the run at all."""
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        llm = load_model("GPT-4")
        on = evaluate_model(llm, bench, num_samples=3, seed=5,
                            runner=Runner(static_screen=True))
        off = evaluate_model(llm, bench, num_samples=3, seed=5,
                             runner=Runner(static_screen=False))
        assert on.to_json() == off.to_json()

    def test_screen_off_restores_dynamic_statuses(self):
        """Screen-off runs contain no static_fail / diagnostics; screen-on
        differs only by short-circuiting dynamically-convicted samples."""
        bench = PCGBench(problem_types=["reduce"], models=["openmp"])
        llm = load_model("GPT-3.5")
        on = evaluate_model(llm, bench, num_samples=6, seed=3,
                            runner=Runner(static_screen=True))
        off = evaluate_model(llm, bench, num_samples=6, seed=3,
                             runner=Runner(static_screen=False))
        for uid in off.prompts:
            for s_on, s_off in zip(on.prompts[uid].samples,
                                   off.prompts[uid].samples):
                assert s_off.status != "static_fail"
                assert s_off.diagnostics == []
                if s_on.status == "static_fail":
                    # the screen only intercepts samples the dynamic
                    # runtime also rejects
                    assert s_off.status in ("runtime_error", "timeout",
                                            "wrong_answer")
                else:
                    assert s_on.status == s_off.status


class TestEvalRunRoundTrip:
    def test_exact_json_round_trip(self):
        bench = PCGBench(problem_types=["reduce"],
                         models=["serial", "openmp"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=3,
                             temperature=0.2, with_timing=True, seed=5)
        text = run.to_json()
        back = EvalRun.from_json(text)
        assert back.to_json() == text       # byte-exact, times included

    def test_round_trip_carries_format_version(self):
        bench = PCGBench(problem_types=["reduce"], models=["serial"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=2,
                             seed=5)
        assert run.format_version == FORMAT_VERSION
        assert EvalRun.from_json(run.to_json()).format_version == \
            FORMAT_VERSION
