"""End-to-end tests of the Runner pipeline on hand-picked samples."""

import pytest

from repro.bench import all_problems, baseline_source, render_prompt
from repro.harness import Runner


@pytest.fixture(scope="module")
def runner():
    return Runner(correctness_trials=2)


@pytest.fixture(scope="module")
def runner_noscreen():
    """Dynamic-only runner: MiniParSan pre-execution screen disabled."""
    return Runner(correctness_trials=2, static_screen=False)


def problem(name):
    return next(p for p in all_problems() if p.name == name)


_RACY_SUM = """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
"""

_MPI_DEADLOCK = """
kernel sum_of_elements(x: array<float>) -> float {
    return mpi_recv_float((mpi_rank() + 1) % mpi_size(), 0);
}
"""


class TestStatuses:
    def test_correct_serial(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        res = runner.evaluate_sample(baseline_source(p.name), prompt)
        assert res.status == "correct"

    def test_build_error_syntax(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        res = runner.evaluate_sample("kernel sum_of_elements(", prompt)
        assert res.status == "build_error"
        assert "compile error" in res.detail

    def test_build_error_type(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        src = "kernel sum_of_elements(x: array<float>) -> float { return x; }"
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "build_error"

    def test_link_error_is_build_error(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        src = ('kernel sum_of_elements(x: array<float>) -> float { '
               'return parallel_reduce(len(x), "sum", (i) => x[i]); }')
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "build_error"
        assert "link error" in res.detail

    def test_not_parallel(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "openmp")
        res = runner.evaluate_sample(baseline_source(p.name), prompt)
        assert res.status == "not_parallel"

    def test_wrong_answer(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        src = """
        kernel sum_of_elements(x: array<float>) -> float {
            let total = 0.0;
            for (i in 1..len(x)) {
                total += x[i];
            }
            return total;
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "wrong_answer"

    def test_runtime_error_trap(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        src = """
        kernel sum_of_elements(x: array<float>) -> float {
            return x[len(x)];
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "runtime_error"

    def test_timeout(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "serial")
        src = """
        kernel sum_of_elements(x: array<float>) -> float {
            let total = 0.0;
            while (total >= 0.0) {
                total += 1.0;
            }
            return total;
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "timeout"

    def test_race_is_runtime_error(self, runner_noscreen):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "openmp")
        res = runner_noscreen.evaluate_sample(_RACY_SUM, prompt)
        assert res.status == "runtime_error"
        assert "race" in res.detail.lower()
        assert res.diagnostics == []    # screen off: nothing attached

    def test_race_is_static_fail_with_screen(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "openmp")
        res = runner.evaluate_sample(_RACY_SUM, prompt)
        assert res.status == "static_fail"
        assert res.detail.startswith("static:")
        assert any(d.analyzer == "race" and d.certainty == "definite"
                   for d in res.diagnostics)

    def test_mpi_deadlock_is_runtime_error(self, runner_noscreen):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "mpi")
        res = runner_noscreen.evaluate_sample(_MPI_DEADLOCK, prompt)
        assert res.status == "runtime_error"

    def test_mpi_deadlock_is_static_fail_with_screen(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "mpi")
        res = runner.evaluate_sample(_MPI_DEADLOCK, prompt)
        assert res.status == "static_fail"
        assert any(d.analyzer == "mpi" and d.certainty == "definite"
                   for d in res.diagnostics)


class TestTiming:
    def test_baseline_time_positive(self, runner):
        assert runner.baseline_time(problem("sum_of_elements")) > 0.0

    def test_openmp_timing_covers_thread_grid(self, runner):
        p = problem("relu")
        prompt = render_prompt(p, "openmp")
        src = """
        kernel relu(x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                x[i] = max(x[i], 0.0);
            }
        }
        """
        res = runner.evaluate_sample(src, prompt, with_timing=True)
        assert res.status == "correct"
        assert set(res.times) == set(runner.thread_counts)
        assert res.times[32] < res.times[1]

    def test_mpi_timing_covers_rank_grid(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "mpi")
        src = """
        kernel sum_of_elements(x: array<float>) -> float {
            let rank = mpi_rank();
            let size = mpi_size();
            let chunk = (len(x) + size - 1) / size;
            let lo = rank * chunk;
            let hi = min(lo + chunk, len(x));
            let local = 0.0;
            for (i in lo..hi) {
                local += x[i];
            }
            return mpi_allreduce_float(local, "sum");
        }
        """
        small = Runner(mpi_rank_counts=(1, 4, 16))
        res = small.evaluate_sample(src, prompt, with_timing=True)
        assert res.status == "correct"
        assert set(res.times) == {1, 4, 16}

    def test_gpu_timing_uses_kernel_threads(self, runner):
        p = problem("relu")
        prompt = render_prompt(p, "cuda")
        src = """
        kernel relu(x: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                x[i] = max(x[i], 0.0);
            }
        }
        """
        res = runner.evaluate_sample(src, prompt, with_timing=True)
        assert res.status == "correct"
        (n,) = res.times
        # n is the (work-scaled) kernel thread count
        assert n >= p.timing_size

    def test_speedup_against_baseline_sane(self, runner):
        p = problem("relu")
        prompt = render_prompt(p, "openmp")
        src = """
        kernel relu(x: array<float>) {
            pragma omp parallel for
            for (i in 0..len(x)) {
                x[i] = max(x[i], 0.0);
            }
        }
        """
        res = runner.evaluate_sample(src, prompt, with_timing=True)
        t_star = runner.baseline_time(p)
        speedup32 = t_star / res.times[32]
        assert 2.0 < speedup32 < 40.0


class TestGPUResultBuffer:
    def test_scalar_return_via_result_buffer(self, runner):
        p = problem("sum_of_elements")
        prompt = render_prompt(p, "cuda")
        src = """
        kernel sum_of_elements(x: array<float>, result: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_add(result, 0, x[i]);
            }
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "correct"

    def test_min_reduction_uses_seed(self, runner):
        p = problem("smallest_element")
        prompt = render_prompt(p, "cuda")
        src = """
        kernel smallest_element(x: array<float>, result: array<float>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                atomic_min(result, 0, x[i]);
            }
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "correct"

    def test_not_found_sentinel(self, runner):
        p = problem("index_of_first")
        prompt = render_prompt(p, "cuda")
        src = """
        kernel index_of_first(x: array<float>, v: float, result: array<int>) {
            let i = block_idx() * block_dim() + thread_idx();
            if (i < len(x)) {
                if (x[i] == v) {
                    atomic_min(result, 0, i);
                }
            }
        }
        """
        res = runner.evaluate_sample(src, prompt)
        assert res.status == "correct"
