"""Tests for aggregation and figure/table generation."""

import pytest

from repro.analysis import (
    curve_table,
    efficiency_curve,
    fig1_pass_by_exec_model,
    fig2_overall,
    fig3_pass_by_ptype,
    fig4_pass_curve,
    fig6_speedups,
    fig7_efficiency,
    pass_by_exec_model,
    pass_by_ptype,
    pass_serial_vs_parallel,
    render_table,
    status_breakdown,
    table1,
    table2,
)
from repro.bench import PCGBench
from repro.harness import Runner, evaluate_model
from repro.harness.evaluate import EvalRun, PromptRecord, SampleRecord
from repro.models import load_model


def synthetic_run() -> EvalRun:
    """A handcrafted run with known pass rates."""
    run = EvalRun(llm="toy", temperature=0.2, num_samples=2,
                  with_timing=True, seed=0)

    def rec(uid, ptype, exec_model, statuses, baseline=None, times=None):
        samples = []
        for i, s in enumerate(statuses):
            t = {} if not times else times[i]
            samples.append(SampleRecord(status=s, times=t))
        run.prompts[uid] = PromptRecord(
            uid=uid, ptype=ptype, exec_model=exec_model,
            samples=samples, baseline=baseline,
        )

    rec("a/serial", "reduce", "serial", ["correct", "correct"],
        baseline=8.0, times=[{1: 8.0}, {1: 8.0}])
    rec("b/openmp", "reduce", "openmp", ["correct", "wrong_answer"],
        baseline=8.0, times=[{32: 1.0}, {}])
    rec("c/openmp", "search", "openmp", ["correct", "correct"],
        baseline=8.0, times=[{32: 0.001}, {32: 0.001}])
    rec("d/mpi", "reduce", "mpi", ["build_error", "build_error"])
    return run


class TestAggregations:
    def test_pass_by_exec_model(self):
        run = synthetic_run()
        stats = pass_by_exec_model(run, k=1)
        assert stats["serial"] == 1.0
        assert stats["openmp"] == pytest.approx(0.75)  # (0.5 + 1.0)/2
        assert stats["mpi"] == 0.0

    def test_serial_vs_parallel(self):
        run = synthetic_run()
        sp = pass_serial_vs_parallel(run, k=1)
        assert sp["serial"] == 1.0
        assert sp["parallel"] == pytest.approx((0.5 + 1.0 + 0.0) / 3)

    def test_pass_by_ptype(self):
        run = synthetic_run()
        stats = pass_by_ptype(run, k=1)
        assert stats["reduce"] == pytest.approx((1.0 + 0.5 + 0.0) / 3)
        assert stats["search"] == 1.0

    def test_search_excluded_from_performance(self):
        from repro.analysis import speedup_by_exec_model

        run = synthetic_run()
        sp = speedup_by_exec_model(run, k=1)
        # only prompt b (reduce/openmp) counts; mean of (8, 0) speedups = 4
        assert sp["openmp"] == pytest.approx(4.0)

    def test_efficiency_divides_by_n(self):
        from repro.analysis import efficiency_by_exec_model

        run = synthetic_run()
        eff = efficiency_by_exec_model(run, k=1)
        assert eff["openmp"] == pytest.approx(4.0 / 32)
        assert eff["serial"] == pytest.approx(1.0)

    def test_efficiency_curve_missing_n_is_zero(self):
        run = synthetic_run()
        curve = efficiency_curve(run, "openmp", [16, 32])
        assert curve[16] == 0.0  # nothing measured at 16 threads
        assert curve[32] > 0.0

    def test_status_breakdown(self):
        counts = status_breakdown(synthetic_run())
        assert counts["correct"] == 5
        assert counts["build_error"] == 2


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert "30" in lines[3]

    def test_table1_counts(self):
        text = table1()
        assert "420" in text
        assert "transform" in text

    def test_table2_models(self):
        text = table2()
        assert "GPT-4" in text
        assert "71.95" in text  # Phind's HumanEval score

    def test_curve_table(self):
        text = curve_table("t", "m", {"x": {1: 0.5, 2: 0.75}})
        assert "0.500" in text and "0.750" in text


class TestFigureBuilders:
    @pytest.fixture(scope="class")
    def runs(self):
        bench = PCGBench(problem_types=["transform", "reduce"],
                         models=["serial", "openmp"])
        return {
            name: evaluate_model(load_model(name), bench, num_samples=3,
                                 temperature=0.2, seed=21)
            for name in ("GPT-3.5", "CodeLlama-7B")
        }

    def test_fig1(self, runs):
        data, text = fig1_pass_by_exec_model(runs)
        assert "GPT-3.5" in data and "openmp" in data["GPT-3.5"]
        assert "Figure 1" in text

    def test_fig2_gpt_beats_codellama(self, runs):
        data, _ = fig2_overall(runs)
        assert data["GPT-3.5"]["serial"] >= data["CodeLlama-7B"]["serial"]

    def test_fig3(self, runs):
        data, text = fig3_pass_by_ptype(runs)
        assert "transform" in data["GPT-3.5"]
        assert "Figure 3" in text

    def test_fig4_monotone(self, runs):
        data, _ = fig4_pass_curve(runs, ks=(1, 2, 3))
        for series in data.values():
            assert series[1] <= series[2] <= series[3]

    def test_fig6_fig7_need_timing(self):
        bench = PCGBench(problem_types=["transform"], models=["openmp"])
        run = evaluate_model(load_model("GPT-4"), bench, num_samples=2,
                             temperature=0.2, with_timing=True, seed=4)
        data6, text6 = fig6_speedups({"GPT-4": run})
        data7, text7 = fig7_efficiency({"GPT-4": run})
        assert data6["GPT-4"]["openmp"] > 0
        assert 0 < data7["GPT-4"]["openmp"] <= 1.5
        assert "Figure 6" in text6 and "Figure 7" in text7
