"""Unit tests for performance-entry assembly (incl. the per-prompt-n GPU
path) and headline aggregation plumbing."""

import pytest

from repro.analysis.aggregate import (
    HEADLINE_N,
    PERF_EXCLUDED_STATUSES,
    overall_parallel_efficiency,
    overall_parallel_speedup,
    perf_entries,
)
from repro.harness.evaluate import EvalRun, PromptRecord, SampleRecord


def record(uid, exec_model, baseline, times_per_sample, ptype="reduce",
           statuses=None):
    statuses = statuses or ["correct"] * len(times_per_sample)
    return PromptRecord(
        uid=uid, ptype=ptype, exec_model=exec_model, baseline=baseline,
        samples=[SampleRecord(status=s, times=t)
                 for s, t in zip(statuses, times_per_sample)],
    )


class TestPerfEntries:
    def test_fixed_n(self):
        rec = record("a", "openmp", 10.0, [{32: 2.0}, {32: 5.0}])
        (entry,) = perf_entries([rec], 32)
        assert entry["n"] == 32
        assert entry["times"] == [2.0, 5.0]

    def test_missing_n_becomes_none(self):
        rec = record("a", "openmp", 10.0, [{16: 2.0}])
        (entry,) = perf_entries([rec], 32)
        assert entry["times"] == [None]

    def test_per_prompt_n_for_gpu(self):
        rec = record("a", "cuda", 10.0, [{2048: 1.0}, {2048: 4.0}])
        (entry,) = perf_entries([rec], None)
        assert entry["n"] == 2048
        assert entry["times"] == [1.0, 4.0]

    def test_gpu_prompt_with_no_measurements(self):
        rec = record("a", "cuda", 10.0, [{}])
        (entry,) = perf_entries([rec], None)
        assert entry["n"] == 1
        assert entry["times"] == [None]

    def test_headline_n_table_covers_all_models(self):
        assert set(HEADLINE_N) == {
            "serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"}

    def test_unjudged_samples_leave_the_pool(self):
        """system_error/degraded slots are dropped entirely (the pool
        shrinks), not scored as 0-speedup failures the way a judged
        wrong_answer (None time) is."""
        rec = record("a", "openmp", 10.0,
                     [{32: 2.0}, {}, {}, {}],
                     statuses=["correct", "system_error", "degraded",
                               "wrong_answer"])
        (entry,) = perf_entries([rec], 32)
        assert entry["times"] == [2.0, None]   # wrong_answer stays as None

    def test_gpu_path_applies_the_same_exclusion(self):
        rec = record("a", "cuda", 10.0, [{2048: 1.0}, {}],
                     statuses=["correct", "system_error"])
        (entry,) = perf_entries([rec], None)
        assert entry["n"] == 2048
        assert entry["times"] == [1.0]

    def test_excluded_status_set(self):
        assert PERF_EXCLUDED_STATUSES == {"system_error", "quarantined",
                                          "degraded"}

    def test_quarantined_shrinks_the_pool(self):
        rec = record("a", "openmp", 10.0, [{32: 2.0}, {}],
                     statuses=["correct", "quarantined"])
        (entry,) = perf_entries([rec], 32)
        assert entry["times"] == [2.0]


class TestOverallHeadlines:
    def _run(self):
        run = EvalRun(llm="toy", temperature=0.2, num_samples=1,
                      with_timing=True, seed=0)
        run.prompts["a"] = record("a", "openmp", 32.0, [{32: 1.0}])
        run.prompts["b"] = record("b", "cuda", 10.0, [{1000: 1.0}])
        run.prompts["c"] = record("c", "openmp", 8.0, [{32: 1.0}],
                                  ptype="search")  # excluded
        return run

    def test_pooled_speedup(self):
        run = self._run()
        # (32x + 10x) / 2 prompts; the search prompt is excluded
        assert overall_parallel_speedup(run) == pytest.approx(21.0)

    def test_pooled_efficiency(self):
        run = self._run()
        # (32/32 + 10/1000) / 2
        assert overall_parallel_efficiency(run) == pytest.approx(
            (1.0 + 0.01) / 2)
