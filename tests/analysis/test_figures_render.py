"""Rendering-level tests for the figure builders using synthetic runs
(no evaluation cost; complements the integration-level tests)."""

import pytest

from repro.analysis import (
    fig1_pass_by_exec_model,
    fig5_efficiency_curves,
    fig6_speedups,
    fig7_efficiency,
)
from repro.harness.evaluate import EvalRun, PromptRecord, SampleRecord


def timed_run(llm: str, eff32: float) -> EvalRun:
    """A run with one OpenMP prompt whose best sample hits eff32 at 32
    threads, plus one MPI prompt at several rank counts."""
    run = EvalRun(llm=llm, temperature=0.2, num_samples=1,
                  with_timing=True, seed=0)
    base = 32.0
    run.prompts["reduce/sum/openmp"] = PromptRecord(
        uid="reduce/sum/openmp", ptype="reduce", exec_model="openmp",
        baseline=base,
        samples=[SampleRecord(
            status="correct",
            times={n: base / (eff32 * 32) * (32 / n) for n in (1, 2, 8, 32)},
        )],
    )
    run.prompts["reduce/sum/mpi"] = PromptRecord(
        uid="reduce/sum/mpi", ptype="reduce", exec_model="mpi",
        baseline=base,
        samples=[SampleRecord(
            status="correct",
            times={n: base / min(n, 64) for n in (1, 4, 64, 512)},
        )],
    )
    return run


class TestFigureRendering:
    def test_fig5_series_shapes(self):
        runs = {"A": timed_run("A", 0.9), "B": timed_run("B", 0.3)}
        data, text = fig5_efficiency_curves(
            runs, mpi_ns=(1, 4, 64, 512), thread_ns=(1, 2, 8, 32))
        assert data["openmp"]["A"][32] == pytest.approx(0.9)
        assert data["openmp"]["B"][32] == pytest.approx(0.3)
        # mpi efficiency saturates: speedup capped at 64
        assert data["mpi"]["A"][512] == pytest.approx(64 / 512)
        assert "Figure 5" in text

    def test_fig6_and_7_consistent(self):
        runs = {"A": timed_run("A", 0.5)}
        sp, _ = fig6_speedups(runs)
        eff, _ = fig7_efficiency(runs)
        assert sp["A"]["openmp"] == pytest.approx(0.5 * 32)
        assert eff["A"]["openmp"] == pytest.approx(0.5)
        # efficiency is exactly speedup / headline n
        assert eff["A"]["mpi"] == pytest.approx(sp["A"]["mpi"] / 512)

    def test_fig1_column_filtering(self):
        run = timed_run("A", 0.5)
        data, text = fig1_pass_by_exec_model({"A": run})
        assert set(data["A"]) == {"openmp", "mpi"}
        assert "kokkos" not in text.splitlines()[1]
