"""Tests for CSV export and run comparison utilities."""

import csv
import io

import pytest

from repro.analysis.export import compare_runs, summary_rows, to_csv
from repro.harness.evaluate import EvalRun, PromptRecord, SampleRecord


def make_run(llm="toy", omp_statuses=("correct", "wrong_answer")):
    run = EvalRun(llm=llm, temperature=0.2, num_samples=2,
                  with_timing=True, seed=0)
    run.prompts["reduce/sum/openmp"] = PromptRecord(
        uid="reduce/sum/openmp", ptype="reduce", exec_model="openmp",
        baseline=4.0,
        samples=[
            SampleRecord(status=omp_statuses[0], intended="correct",
                         times={1: 4.0, 32: 0.5}),
            SampleRecord(status=omp_statuses[1], intended="bug"),
        ],
    )
    run.prompts["sort/asc/serial"] = PromptRecord(
        uid="sort/asc/serial", ptype="sort", exec_model="serial",
        samples=[SampleRecord(status="correct"), SampleRecord(status="correct")],
    )
    return run


class TestCSV:
    def test_one_row_per_sample(self):
        text = to_csv(make_run())
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1 + 4  # header + 4 samples

    def test_timing_columns_union_of_ns(self):
        text = to_csv(make_run())
        header = text.splitlines()[0].split(",")
        assert "t_n1_s" in header and "t_n32_s" in header

    def test_values_round_trip(self):
        rows = list(csv.reader(io.StringIO(to_csv(make_run()))))
        header = rows[0]
        sample0 = dict(zip(header, rows[1]))
        assert sample0["status"] == "correct"
        assert float(sample0["t_n32_s"]) == 0.5
        assert sample0["exec_model"] == "openmp"

    def test_zero_baseline_exports_as_zero_not_blank(self):
        """Regression: a falsy-but-present baseline (0.0) used to export
        as an empty cell, indistinguishable from 'never measured'."""
        run = make_run()
        run.prompts["reduce/sum/openmp"].baseline = 0.0
        rows = list(csv.reader(io.StringIO(to_csv(run))))
        header = rows[0]
        sample0 = dict(zip(header, rows[1]))
        assert sample0["baseline_s"] == "0.0"
        missing = dict(zip(header, rows[3]))   # sort/asc has no baseline
        assert missing["baseline_s"] == ""

    def test_profiled_samples_add_profile_columns(self):
        from repro.prof import CATEGORIES, Profile

        run = make_run()
        prof = Profile(model="openmp",
                       categories={1: {"compute": 4.0},
                                   32: {"compute": 0.3, "fork_join": 0.2}},
                       counters={"atomic_ops": 8.0, "atomic_targets": 2.0})
        run.prompts["reduce/sum/openmp"].samples[0].profile = prof.to_dict()
        rows = list(csv.reader(io.StringIO(to_csv(run))))
        header = rows[0]
        assert "bottleneck" in header and "p_fork_join" in header
        samples = [dict(zip(header, r)) for r in rows[1:]]
        profiled = samples[0]
        assert profiled["bottleneck"] == "overhead-bound"
        assert float(profiled["p_fork_join"]) == pytest.approx(0.4)
        assert float(profiled["atomic_ops"]) == 8.0
        # unprofiled samples in the same run leave the new cells blank
        assert samples[1]["bottleneck"] == ""
        assert all(samples[1][f"p_{c}"] == "" for c in CATEGORIES)

    def test_unprofiled_run_keeps_legacy_schema(self):
        header = to_csv(make_run()).splitlines()[0].split(",")
        assert "bottleneck" not in header
        assert not any(c.startswith("p_") for c in header)

    def test_resilience_statuses_export_like_any_other(self):
        run = make_run()
        run.prompts["reduce/sum/openmp"].samples.extend([
            SampleRecord(status="degraded",
                         detail="timing sweep fault-perturbed"),
            SampleRecord(status="system_error",
                         detail="scheduler: worker crash budget"),
        ])
        rows = list(csv.reader(io.StringIO(to_csv(run))))
        header = rows[0]
        samples = [dict(zip(header, r)) for r in rows[1:]]
        statuses = {s["status"] for s in samples}
        assert {"degraded", "system_error"} <= statuses
        degraded = next(s for s in samples if s["status"] == "degraded")
        # degraded records carry no times: every timing cell is empty
        assert all(degraded[c] == "" for c in header
                   if c.startswith("t_n"))


class TestSummaryRows:
    def test_cells_present_only(self):
        rows = summary_rows(make_run())
        dims = {(r["exec_model"], r["ptype"]) for r in rows}
        assert dims == {("openmp", "reduce"), ("serial", "sort")}

    def test_pass_values(self):
        rows = summary_rows(make_run())
        by = {(r["exec_model"], r["ptype"]): r["pass@1"] for r in rows}
        assert by[("openmp", "reduce")] == pytest.approx(0.5)
        assert by[("serial", "sort")] == 1.0


class TestCompareRuns:
    def test_detects_regression(self):
        a = make_run()
        b = make_run(omp_statuses=("wrong_answer", "wrong_answer"))
        deltas = compare_runs(a, b)
        top = deltas[0]
        assert top[0] in ("exec:openmp", "ptype:reduce")
        assert top[3] == pytest.approx(-0.5)

    def test_min_delta_filters(self):
        a, b = make_run(), make_run()
        assert compare_runs(a, b, min_delta=0.01) == []

    def test_identical_runs_zero_delta(self):
        a, b = make_run(), make_run()
        for _, va, vb, d in compare_runs(a, b):
            assert d == 0.0 and va == vb
