"""Tests for the problem-size scaling extension (§6.2 last paragraph)."""

import pytest

from repro.analysis.problem_size import (
    baseline_size_scaling,
    complexity_gap,
    measure_size_scaling,
)
from repro.bench import all_problems
from repro.lang import compile_source
from repro.runtime.compile import compile_program


def problem(name):
    return next(p for p in all_problems() if p.name == name)


SIZES = (128, 256, 512, 1024)


class TestFits:
    def test_linear_kernel_fits_exponent_one(self):
        p = problem("relu")
        base = baseline_size_scaling(p, SIZES)
        assert base.exponent == pytest.approx(1.0, abs=0.15)

    def test_sort_baseline_slightly_superlinear(self):
        p = problem("sort_ascending")
        base = baseline_size_scaling(p, SIZES)
        assert 1.0 < base.exponent < 1.4  # n log n

    def test_quadratic_kernel_fits_exponent_two(self):
        p = problem("prefix_sum")
        src = """
        kernel prefix_sum(x: array<float>, out: array<float>) {
            for (i in 0..len(x)) {
                let acc = 0.0;
                for (k in 0..i + 1) {
                    acc += x[k];
                }
                out[i] = acc;
            }
        }
        """
        scaling = measure_size_scaling(
            compile_program(compile_source(src)), p, SIZES)
        assert scaling.exponent == pytest.approx(2.0, abs=0.2)

    def test_predicted_interpolates(self):
        p = problem("relu")
        base = baseline_size_scaling(p, SIZES)
        mid = base.predicted(384)
        assert base.costs[1] < mid < base.costs[2]


class TestComplexityGap:
    def test_naive_scan_shows_gap_of_one(self):
        p = problem("prefix_sum")
        naive = """
        kernel prefix_sum(x: array<float>, out: array<float>) {
            for (i in 0..len(x)) {
                let acc = 0.0;
                for (k in 0..i + 1) {
                    acc += x[k];
                }
                out[i] = acc;
            }
        }
        """
        gap = complexity_gap(naive, p, SIZES)
        assert gap is not None
        assert gap["gap"] == pytest.approx(1.0, abs=0.25)

    def test_optimal_sample_shows_no_gap(self):
        from repro.bench import baseline_source

        p = problem("prefix_sum")
        gap = complexity_gap(baseline_source(p.name), p, SIZES)
        assert gap["gap"] == pytest.approx(0.0, abs=0.1)

    def test_broken_sample_returns_none(self):
        p = problem("prefix_sum")
        assert complexity_gap("kernel prefix_sum(", p, SIZES) is None

    def test_trapping_sample_returns_none(self):
        p = problem("prefix_sum")
        src = """
        kernel prefix_sum(x: array<float>, out: array<float>) {
            out[len(out)] = 1.0;
        }
        """
        assert complexity_gap(src, p, SIZES) is None
