PY ?= python

.PHONY: install test bench bench-quick figures examples clean-cache lint-tests

install:
	pip install -e . --no-build-isolation || \
	  echo "$(PWD)/src" > "$$($(PY) -c 'import site; print(site.getsitepackages()[0])')/repro-dev.pth"

test:
	$(PY) -m pytest tests/ -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q -s

bench-quick:
	REPRO_SAMPLES=4 $(PY) -m pytest benchmarks/ --benchmark-only -q -s

figures:
	$(PY) -m repro figures

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/minipar_tour.py
	$(PY) examples/custom_problem.py
	$(PY) examples/scaling_study.py
	$(PY) examples/evaluate_models.py

clean-cache:
	rm -rf .repro_cache results
