#!/usr/bin/env python3
"""Refresh the measured-numbers appendix of EXPERIMENTS.md from results/.

Run after ``pytest benchmarks/ --benchmark-only`` so the recorded numbers
always match the committed results files.
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

MARKER = "## Appendix — recorded outputs"


def main() -> int:
    if not RESULTS.is_dir():
        print("no results/ directory; run the benchmarks first")
        return 1
    blocks = []
    for path in sorted(RESULTS.glob("*.txt")):
        blocks.append(f"### `{path.name}`\n\n```\n{path.read_text().rstrip()}\n```\n")
    appendix = (
        f"{MARKER}\n\n"
        "Verbatim copies of the most recent benchmark outputs (regenerate "
        "with `pytest benchmarks/ --benchmark-only` and re-run "
        "`python scripts/update_experiments.py`).\n\n"
        + "\n".join(blocks)
    )
    text = EXPERIMENTS.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n\n" + appendix
    else:
        text = text.rstrip() + "\n\n---\n\n" + appendix
    EXPERIMENTS.write_text(text)
    print(f"embedded {len(blocks)} result files into EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
